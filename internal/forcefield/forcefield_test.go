package forcefield

import (
	"math"
	"testing"

	"spice/internal/topology"
	"spice/internal/vec"
	"spice/internal/xrand"
)

// numGrad computes -dE/dx numerically for term tm at atom i, component c.
func numGrad(tm Term, pos []vec.V, i int, h float64) vec.V {
	energyAt := func(p []vec.V) float64 {
		f := make([]vec.V, len(p))
		return tm.AddForces(p, f)
	}
	var g vec.V
	for c := 0; c < 3; c++ {
		p := append([]vec.V(nil), pos...)
		bump := func(delta float64) float64 {
			q := append([]vec.V(nil), p...)
			switch c {
			case 0:
				q[i].X += delta
			case 1:
				q[i].Y += delta
			case 2:
				q[i].Z += delta
			}
			return energyAt(q)
		}
		d := -(bump(h) - bump(-h)) / (2 * h)
		switch c {
		case 0:
			g.X = d
		case 1:
			g.Y = d
		case 2:
			g.Z = d
		}
	}
	return g
}

// checkForces compares analytic and numerical forces for every atom.
func checkForces(t *testing.T, tm Term, pos []vec.V, tol float64) {
	t.Helper()
	f := make([]vec.V, len(pos))
	tm.AddForces(pos, f)
	for i := range pos {
		num := numGrad(tm, pos, i, 1e-5)
		if vec.Dist(f[i], num) > tol*(1+num.Norm()) {
			t.Fatalf("%s: atom %d analytic %v vs numeric %v", tm.Name(), i, f[i], num)
		}
	}
}

func TestBondForceMatchesGradient(t *testing.T) {
	top := topology.New()
	a := top.AddAtom(topology.Atom{Mass: 1})
	b := top.AddAtom(topology.Atom{Mass: 1})
	_ = top.AddBond(topology.Bond{I: a, J: b, R0: 1.5, K: 10})
	rng := xrand.New(1)
	for trial := 0; trial < 20; trial++ {
		pos := []vec.V{
			{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()},
			{X: 1.5 + rng.NormFloat64()*0.3, Y: rng.NormFloat64() * 0.3, Z: rng.NormFloat64() * 0.3},
		}
		checkForces(t, Bonds{Top: top}, pos, 1e-5)
	}
}

func TestBondEnergyMinimumAtR0(t *testing.T) {
	top := topology.New()
	a := top.AddAtom(topology.Atom{Mass: 1})
	b := top.AddAtom(topology.Atom{Mass: 1})
	_ = top.AddBond(topology.Bond{I: a, J: b, R0: 2, K: 7})
	f := make([]vec.V, 2)
	e0 := Bonds{Top: top}.AddForces([]vec.V{{}, {X: 2}}, f)
	if e0 != 0 {
		t.Fatalf("energy at R0 = %v", e0)
	}
	if f[a].Norm() > 1e-12 || f[b].Norm() > 1e-12 {
		t.Fatal("nonzero force at equilibrium")
	}
	// E(r) = K (r-R0)²: at r=3, E = 7.
	f2 := make([]vec.V, 2)
	e1 := Bonds{Top: top}.AddForces([]vec.V{{}, {X: 3}}, f2)
	if math.Abs(e1-7) > 1e-12 {
		t.Fatalf("energy at r=3: %v, want 7", e1)
	}
}

func TestBondNewtonThirdLaw(t *testing.T) {
	top := topology.New()
	a := top.AddAtom(topology.Atom{Mass: 1})
	b := top.AddAtom(topology.Atom{Mass: 1})
	_ = top.AddBond(topology.Bond{I: a, J: b, R0: 1, K: 3})
	f := make([]vec.V, 2)
	Bonds{Top: top}.AddForces([]vec.V{{X: 0.2, Y: 0.1}, {X: 1.7, Z: -0.5}}, f)
	if f[a].Add(f[b]).Norm() > 1e-12 {
		t.Fatalf("momentum not conserved: %v + %v", f[a], f[b])
	}
}

func TestAngleForceMatchesGradient(t *testing.T) {
	top := topology.New()
	a := top.AddAtom(topology.Atom{Mass: 1})
	b := top.AddAtom(topology.Atom{Mass: 1})
	c := top.AddAtom(topology.Atom{Mass: 1})
	_ = top.AddAngle(topology.Angle{I: a, J: b, K: c, Theta0: 2.0, KTheta: 4})
	rng := xrand.New(2)
	for trial := 0; trial < 20; trial++ {
		pos := []vec.V{
			{X: 1 + 0.2*rng.NormFloat64(), Y: 0.3 * rng.NormFloat64(), Z: 0.3 * rng.NormFloat64()},
			{},
			{X: -0.5 + 0.2*rng.NormFloat64(), Y: 1 + 0.3*rng.NormFloat64(), Z: 0.3 * rng.NormFloat64()},
		}
		checkForces(t, Angles{Top: top}, pos, 1e-4)
	}
}

func TestAngleForcesSumToZero(t *testing.T) {
	top := topology.New()
	a := top.AddAtom(topology.Atom{Mass: 1})
	b := top.AddAtom(topology.Atom{Mass: 1})
	c := top.AddAtom(topology.Atom{Mass: 1})
	_ = top.AddAngle(topology.Angle{I: a, J: b, K: c, Theta0: math.Pi / 2, KTheta: 2})
	f := make([]vec.V, 3)
	Angles{Top: top}.AddForces([]vec.V{{X: 1}, {}, {X: 0.2, Y: 1.3, Z: -0.4}}, f)
	sum := f[0].Add(f[1]).Add(f[2])
	if sum.Norm() > 1e-10 {
		t.Fatalf("angle forces sum to %v", sum)
	}
}

func TestWCAProperties(t *testing.T) {
	w := WCA{Epsilon: 0.5, MaxCut: 10}
	// Zero beyond the 2^{1/6}σ minimum.
	sigma := 2.0 // si+sj with si=sj=1
	rc := sigma * math.Pow(2, 1.0/6)
	e, g := w.EnergyForce((rc+0.01)*(rc+0.01), 0, 0, 1, 1)
	if e != 0 || g != 0 {
		t.Fatalf("WCA nonzero beyond cutoff: e=%v g=%v", e, g)
	}
	// Repulsive (positive g) inside, with E continuous at the cutoff.
	e1, g1 := w.EnergyForce((rc-1e-6)*(rc-1e-6), 0, 0, 1, 1)
	if g1 <= 0 {
		t.Fatalf("WCA attractive inside: g=%v", g1)
	}
	if math.Abs(e1) > 1e-4 {
		t.Fatalf("WCA discontinuous at cutoff: e=%v", e1)
	}
	// Energy at r=σ is ε.
	eSigma, _ := w.EnergyForce(sigma*sigma, 0, 0, 1, 1)
	if math.Abs(eSigma-w.Epsilon) > 1e-9 {
		t.Fatalf("WCA at σ = %v, want ε=%v", eSigma, w.Epsilon)
	}
	// Monotone decreasing energy with r.
	prev := math.Inf(1)
	for r := 0.5; r < rc; r += 0.05 {
		e, _ := w.EnergyForce(r*r, 0, 0, 1, 1)
		if e > prev+1e-12 {
			t.Fatalf("WCA not monotone at r=%v", r)
		}
		prev = e
	}
}

func TestDebyeHuckelProperties(t *testing.T) {
	d := DebyeHuckel{Lambda: 7.9, EpsR: 78.5, Cut: 24}
	// Like charges repel: positive energy, positive g.
	e, g := d.EnergyForce(25, -1, -1, 0, 0)
	if e <= 0 || g <= 0 {
		t.Fatalf("like charges: e=%v g=%v", e, g)
	}
	// Opposite charges attract.
	e2, g2 := d.EnergyForce(25, 1, -1, 0, 0)
	if e2 >= 0 || g2 >= 0 {
		t.Fatalf("opposite charges: e=%v g=%v", e2, g2)
	}
	// Screening: energy decays faster than bare Coulomb.
	e5, _ := d.EnergyForce(5*5, -1, -1, 0, 0)
	e10, _ := d.EnergyForce(10*10, -1, -1, 0, 0)
	if e10/e5 >= 0.5 {
		t.Fatalf("insufficient screening: %v / %v", e10, e5)
	}
	// Zero beyond cutoff or with zero charge.
	if e, g := d.EnergyForce(25*25, -1, -1, 0, 0); e != 0 || g != 0 {
		t.Fatal("nonzero beyond cutoff")
	}
	if e, g := d.EnergyForce(25, 0, -1, 0, 0); e != 0 || g != 0 {
		t.Fatal("nonzero with zero charge")
	}
}

// pairTerm adapts a PairPotential on two atoms to the Term interface so
// the numerical-gradient checker can drive it.
type pairTerm struct {
	pot    PairPotential
	qi, qj float64
	si, sj float64
}

func (pairTerm) Name() string { return "pair" }

func (p pairTerm) AddForces(pos []vec.V, f []vec.V) float64 {
	d := pos[0].Sub(pos[1])
	e, g := p.pot.EnergyForce(d.Norm2(), p.qi, p.qj, p.si, p.sj)
	f[0].AddScaled(g, d)
	f[1].AddScaled(-g, d)
	return e
}

func TestPairForceMatchesGradient(t *testing.T) {
	pots := []struct {
		name string
		pt   pairTerm
	}{
		{"wca", pairTerm{pot: WCA{Epsilon: 0.3, MaxCut: 12}, si: 1.5, sj: 1.2}},
		{"dh", pairTerm{pot: DebyeHuckel{Lambda: 7.9, EpsR: 78.5, Cut: 24}, qi: -1, qj: -1}},
		{"combined", pairTerm{pot: Combined{
			Core: WCA{Epsilon: 0.3, MaxCut: 12},
			Elec: DebyeHuckel{Lambda: 7.9, EpsR: 78.5, Cut: 24},
		}, qi: -1, qj: -1, si: 1.5, sj: 1.2}},
	}
	rng := xrand.New(3)
	for _, p := range pots {
		for trial := 0; trial < 20; trial++ {
			r := 2.2 + 6*rng.Float64()
			dir := vec.V{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Unit()
			pos := []vec.V{vec.Zero, dir.Scale(r)}
			checkForces(t, p.pt, pos, 1e-4)
		}
	}
}

func TestCombinedIsSum(t *testing.T) {
	core := WCA{Epsilon: 0.3, MaxCut: 12}
	elec := DebyeHuckel{Lambda: 7.9, EpsR: 78.5, Cut: 24}
	c := Combined{Core: core, Elec: elec}
	r2 := 9.0
	e1, g1 := core.EnergyForce(r2, -1, -1, 1.5, 1.5)
	e2, g2 := elec.EnergyForce(r2, -1, -1, 1.5, 1.5)
	e, g := c.EnergyForce(r2, -1, -1, 1.5, 1.5)
	if math.Abs(e-(e1+e2)) > 1e-12 || math.Abs(g-(g1+g2)) > 1e-12 {
		t.Fatal("Combined != sum of parts")
	}
	if c.Cutoff() != 24 {
		t.Fatalf("Combined cutoff = %v", c.Cutoff())
	}
}
