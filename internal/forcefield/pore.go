package forcefield

import (
	"math"

	"spice/internal/topology"
	"spice/internal/vec"
)

// PoreField is the analytic confinement field of the hemolysin-like pore
// embedded in a membrane slab. Mobile beads whose centers cross the pore's
// inner surface r = R(z,θ) - s_i feel a harmonic wall; beads inside the
// membrane slab but outside the pore feel a slab expulsion; far from the
// pore a wide soft cylinder keeps the system near the axis (standing in
// for the periodic water box of the all-atom model).
type PoreField struct {
	Pore     topology.PoreParams
	Membrane topology.MembraneParams
	// KWall is the wall stiffness in kcal/mol/Å².
	KWall float64
	// KSlab is the membrane expulsion stiffness in kcal/mol/Å².
	KSlab float64
	// BulkRadius is the soft outer cylinder radius in Å (0 disables).
	BulkRadius float64
	// KBulk is the outer cylinder stiffness.
	KBulk float64
	// Mobile restricts the field to these atom indices (nil = all).
	Mobile []int
	// Radii holds per-atom excluded radii (indexed by atom).
	Radii []float64
}

// NewPoreField builds the field for all mobile atoms of top.
func NewPoreField(top *topology.Topology, pore topology.PoreParams, mem topology.MembraneParams) *PoreField {
	pf := &PoreField{
		Pore:       pore,
		Membrane:   mem,
		KWall:      50,
		KSlab:      20,
		BulkRadius: 45,
		KBulk:      2,
		Radii:      make([]float64, top.N()),
	}
	for i, a := range top.Atoms {
		pf.Radii[i] = a.Radius
		if !a.Fixed {
			pf.Mobile = append(pf.Mobile, i)
		}
	}
	return pf
}

// Name implements Term.
func (*PoreField) Name() string { return "pore" }

// AddForces implements Term.
func (pf *PoreField) AddForces(pos []vec.V, f []vec.V) float64 {
	idx := pf.Mobile
	e := 0.0
	for _, i := range idx {
		e += pf.atomEnergy(i, pos[i], &f[i])
	}
	return e
}

// atomEnergy accumulates the force on one atom and returns its energy.
func (pf *PoreField) atomEnergy(i int, p vec.V, fi *vec.V) float64 {
	r := math.Hypot(p.X, p.Y)
	theta := math.Atan2(p.Y, p.X)
	si := 0.0
	if i < len(pf.Radii) {
		si = pf.Radii[i]
	}
	e := 0.0

	inPore := p.Z >= -pf.Pore.BarrelLength && p.Z <= pf.Pore.VestibuleLength
	if inPore {
		R := pf.Pore.Radius(p.Z, theta)
		allowed := R - si
		d := r - allowed
		if d > 0 {
			// Harmonic wall: E = ½·K·d².
			e += 0.5 * pf.KWall * d * d
			dEdr := pf.KWall * d
			// R depends on θ and z; chain rule.
			dRdtheta := -7 * pf.Pore.Corrugation * math.Sin(7*theta)
			dRdz := pf.axialSlope(p.Z)
			dEdtheta := -dEdr * dRdtheta
			dEdz := -dEdr * dRdz

			// Convert cylindrical gradient to Cartesian force.
			var er, et vec.V
			if r > 1e-12 {
				er = vec.V{X: p.X / r, Y: p.Y / r}
				et = vec.V{X: -p.Y / r, Y: p.X / r}
			}
			fi.AddScaled(-dEdr, er)
			if r > 1e-12 {
				fi.AddScaled(-dEdtheta/r, et)
			}
			fi.Z -= dEdz
		}
	} else if pf.Membrane.Contains(p.Z) {
		// Inside the slab but outside the pore extent: expel along z
		// through the nearest face.
		dLow := p.Z - pf.Membrane.ZMin
		dHigh := pf.Membrane.ZMax - p.Z
		d := math.Min(dLow, dHigh)
		e += 0.5 * pf.KSlab * d * d
		if dLow < dHigh {
			fi.Z -= pf.KSlab * d // push down and out
		} else {
			fi.Z += pf.KSlab * d // push up and out
		}
	}

	// Wide soft cylinder standing in for the bulk water box.
	if pf.BulkRadius > 0 && r > pf.BulkRadius {
		d := r - pf.BulkRadius
		e += 0.5 * pf.KBulk * d * d
		if r > 1e-12 {
			g := -pf.KBulk * d / r
			fi.X += g * p.X
			fi.Y += g * p.Y
		}
	}
	return e
}

// axialSlope returns dR/dz of the axisymmetric profile by central
// difference (the blends are smooth; 1e-4 Å steps are ample).
func (pf *PoreField) axialSlope(z float64) float64 {
	const h = 1e-4
	lo, hi := pf.Pore.AxialRadius(z-h), pf.Pore.AxialRadius(z+h)
	if math.IsInf(lo, 1) || math.IsInf(hi, 1) {
		return 0
	}
	return (hi - lo) / (2 * h)
}

// BindingSite is an attractive ring inside the pore — the CG analogue of
// the chemical interaction sites (charged rings, aromatic residues) that
// give the hemolysin PMF its structure.
type BindingSite struct {
	Z     float64 // axial center, Å
	Depth float64 // well depth, kcal/mol (positive = attractive)
	Width float64 // Gaussian width, Å
}

// BindingSites applies axial Gaussian wells to a set of atoms (the DNA
// beads): E_i = -Depth·exp(-(z_i-Z)²/(2·Width²)).
type BindingSites struct {
	Sites []BindingSite
	Atoms []int // affected atom indices
}

// DefaultBindingSites returns the well pattern used across the Fig. 3/4
// experiments: a deep well just below the constriction (the charged-ring
// contact that dominates the hemolysin PMF — ~10 kT in this CG scaling),
// a moderate well in the barrel binding pocket and a shallow one in the
// vestibule. The deep constriction well is what makes the spring-constant
// choice consequential: a soft spring (κ = 10 pN/Å) smears it, a very
// stiff spring (κ = 1000 pN/Å) pays large work fluctuations on the forced
// escape — the paper's Fig. 4 tradeoff.
func DefaultBindingSites(atoms []int) *BindingSites {
	return &BindingSites{
		Sites: []BindingSite{
			{Z: -2, Depth: 6, Width: 2.5},
			{Z: -12, Depth: 1.2, Width: 4},
			{Z: 10, Depth: 0.6, Width: 5},
		},
		Atoms: atoms,
	}
}

// Name implements Term.
func (*BindingSites) Name() string { return "binding-sites" }

// AddForces implements Term.
func (b *BindingSites) AddForces(pos []vec.V, f []vec.V) float64 {
	e := 0.0
	for _, i := range b.Atoms {
		z := pos[i].Z
		for _, s := range b.Sites {
			dz := z - s.Z
			w2 := s.Width * s.Width
			g := math.Exp(-dz * dz / (2 * w2))
			e -= s.Depth * g
			// F_z = -dE/dz = -Depth·g·dz/w².
			f[i].Z -= s.Depth * g * dz / w2
		}
	}
	return e
}

// ExternalForces applies per-atom forces injected from outside the engine —
// the IMD path: the visualizer (or haptic device) sends forces which the
// steering layer deposits here before each step.
type ExternalForces struct {
	// F maps atom index to applied force (kcal/mol/Å).
	F map[int]vec.V
}

// NewExternalForces returns an empty external force holder.
func NewExternalForces() *ExternalForces { return &ExternalForces{F: make(map[int]vec.V)} }

// Name implements Term.
func (*ExternalForces) Name() string { return "external" }

// Set replaces the force on atom i.
func (x *ExternalForces) Set(i int, f vec.V) { x.F[i] = f }

// Clear removes all applied forces.
func (x *ExternalForces) Clear() {
	for k := range x.F {
		delete(x.F, k)
	}
}

// AddForces implements Term. External forces are non-conservative; the
// returned energy is zero by convention.
func (x *ExternalForces) AddForces(_ []vec.V, f []vec.V) float64 {
	for i, fi := range x.F {
		if i >= 0 && i < len(f) {
			f[i].AddInPlace(fi)
		}
	}
	return 0
}
