// Package forcefield implements the coarse-grained potential energy terms
// of the SPICE translocation model: harmonic bonds and angles along the
// ssDNA backbone, WCA excluded volume and Debye–Hückel screened
// electrostatics between nonbonded beads, and the analytic confinement
// field of the hemolysin-like pore embedded in a membrane slab.
//
// Every term satisfies the Term interface: it accumulates forces into a
// caller-provided slice and returns its potential energy. Pair potentials
// additionally satisfy PairPotential so the engine can drive them through
// its neighbor list.
package forcefield

import (
	"math"

	"spice/internal/topology"
	"spice/internal/vec"
)

// Term is an additive potential-energy contribution.
type Term interface {
	// Name identifies the term in logs and energy breakdowns.
	Name() string
	// AddForces adds -∇E to f (which has one entry per atom) and
	// returns the term's potential energy, both in internal units.
	AddForces(pos []vec.V, f []vec.V) float64
}

// PairPotential evaluates an isotropic nonbonded interaction.
type PairPotential interface {
	// EnergyForce returns the pair energy and the magnitude factor g
	// such that the force on atom i is g·(ri - rj): g = -(dE/dr)/r.
	// r2 is the squared distance; qi, qj the charges; si, sj the radii.
	EnergyForce(r2, qi, qj, si, sj float64) (e, g float64)
	// Cutoff returns the interaction range in Å.
	Cutoff() float64
}

// --- Bonded terms ----------------------------------------------------------

// Bonds evaluates all harmonic bonds of a topology: E = Σ K(r-R0)².
type Bonds struct{ Top *topology.Topology }

// Name implements Term.
func (Bonds) Name() string { return "bond" }

// AddForces implements Term.
func (b Bonds) AddForces(pos []vec.V, f []vec.V) float64 {
	e := 0.0
	for _, bd := range b.Top.Bonds {
		d := pos[bd.I].Sub(pos[bd.J])
		r := d.Norm()
		if r == 0 {
			continue // coincident beads exert no well-defined bond force
		}
		dr := r - bd.R0
		e += bd.K * dr * dr
		// F_i = -dE/dr · d/r = -2K·dr/r · d
		g := -2 * bd.K * dr / r
		f[bd.I].AddScaled(g, d)
		f[bd.J].AddScaled(-g, d)
	}
	return e
}

// Angles evaluates harmonic angles: E = Σ K(θ-θ0)².
type Angles struct{ Top *topology.Topology }

// Name implements Term.
func (Angles) Name() string { return "angle" }

// AddForces implements Term.
func (a Angles) AddForces(pos []vec.V, f []vec.V) float64 {
	e := 0.0
	for _, an := range a.Top.Angles {
		rij := pos[an.I].Sub(pos[an.J])
		rkj := pos[an.K].Sub(pos[an.J])
		nij, nkj := rij.Norm(), rkj.Norm()
		if nij == 0 || nkj == 0 {
			continue
		}
		cos := rij.Dot(rkj) / (nij * nkj)
		cos = math.Max(-1, math.Min(1, cos))
		theta := math.Acos(cos)
		dth := theta - an.Theta0
		e += an.KTheta * dth * dth

		sin := math.Sqrt(1 - cos*cos)
		if sin < 1e-8 {
			continue // collinear: force direction undefined, energy still counted
		}
		// dE/dθ = 2K·dθ ; standard angle-force decomposition.
		// F_i = -dE/dθ·dθ/dri with dθ/dri = -(1/sinθ)·dcosθ/dri,
		// so F_i = (dE/dθ/sinθ)·dcosθ/dri and dE/dθ = 2K·dθ.
		c := 2 * an.KTheta * dth / sin
		fi := rkj.Scale(1 / (nij * nkj)).Sub(rij.Scale(cos / (nij * nij))).Scale(c)
		fk := rij.Scale(1 / (nij * nkj)).Sub(rkj.Scale(cos / (nkj * nkj))).Scale(c)
		f[an.I].AddInPlace(fi)
		f[an.K].AddInPlace(fk)
		f[an.J].SubInPlace(fi.Add(fk))
	}
	return e
}

// --- Nonbonded pair potentials ---------------------------------------------

// WCA is the Weeks–Chandler–Andersen purely repulsive Lennard-Jones core.
// Sigma is derived per pair from the bead radii: σ = si + sj.
type WCA struct {
	Epsilon float64 // kcal/mol
	MaxCut  float64 // Å; pair cutoff used for neighbor listing
}

// Name implements Term-like labeling for diagnostics.
func (WCA) Name() string { return "wca" }

// Cutoff implements PairPotential.
func (w WCA) Cutoff() float64 { return w.MaxCut }

// cbrt2 is 2^{1/3}, precomputed: math.Cbrt is a function call the
// compiler does not fold, and EnergyForce runs once per pair per step.
const cbrt2 = 1.2599210498948731648

// EnergyForce implements PairPotential.
func (w WCA) EnergyForce(r2, _, _, si, sj float64) (float64, float64) {
	sigma := si + sj
	rc2 := sigma * sigma * cbrt2 // (2^{1/6}σ)² = σ²·2^{1/3}
	if r2 >= rc2 || r2 == 0 {
		return 0, 0
	}
	s2 := sigma * sigma / r2
	s6 := s2 * s2 * s2
	s12 := s6 * s6
	e := 4*w.Epsilon*(s12-s6) + w.Epsilon
	// -dE/dr / r = 24ε(2·s12 - s6)/r²
	g := 24 * w.Epsilon * (2*s12 - s6) / r2
	return e, g
}

// DebyeHuckel is screened Coulomb electrostatics:
// E = C·qi·qj/(εr·r)·exp(-r/λD), truncated at Cut.
type DebyeHuckel struct {
	// Lambda is the Debye screening length in Å (7.9 Å at 150 mM
	// monovalent salt, the condition of the paper's experiments).
	Lambda float64
	// EpsR is the relative dielectric constant of the solvent.
	EpsR float64
	// Cut is the truncation distance in Å.
	Cut float64
}

// CoulombConst is e²/(4πε0) in kcal/mol·Å: 332.0637.
const CoulombConst = 332.0637

// Name labels the potential.
func (DebyeHuckel) Name() string { return "debye-huckel" }

// Cutoff implements PairPotential.
func (d DebyeHuckel) Cutoff() float64 { return d.Cut }

// EnergyForce implements PairPotential.
func (d DebyeHuckel) EnergyForce(r2, qi, qj, _, _ float64) (float64, float64) {
	if qi == 0 || qj == 0 || r2 == 0 {
		return 0, 0
	}
	if r2 >= d.Cut*d.Cut {
		return 0, 0
	}
	// Three divides (invR, invL, EpsR) instead of the naive five — this
	// runs once per in-range charged pair per step.
	r := math.Sqrt(r2)
	invR := 1 / r
	invL := 1 / d.Lambda
	e := CoulombConst * qi * qj / d.EpsR * invR * math.Exp(-r*invL)
	// dE/dr = -e·(1/r + 1/λ); g = -(dE/dr)/r
	g := e * (invR + invL) * invR
	return e, g
}

// Combined sums a WCA core and Debye–Hückel tail; the usual nonbonded
// potential for CG polyelectrolytes.
type Combined struct {
	Core WCA
	Elec DebyeHuckel
}

// Name labels the potential.
func (Combined) Name() string { return "wca+dh" }

// Cutoff implements PairPotential.
func (c Combined) Cutoff() float64 { return math.Max(c.Core.Cutoff(), c.Elec.Cutoff()) }

// EnergyForce implements PairPotential.
func (c Combined) EnergyForce(r2, qi, qj, si, sj float64) (float64, float64) {
	e1, g1 := c.Core.EnergyForce(r2, qi, qj, si, sj)
	e2, g2 := c.Elec.EnergyForce(r2, qi, qj, si, sj)
	return e1 + e2, g1 + g2
}
