// Package netutil holds the small amount of TCP server plumbing shared
// by the steering remote bridge and the dist coordinator: a context-aware
// accept loop with graceful shutdown that does not leak goroutines.
package netutil

import (
	"context"
	"errors"
	"net"
	"sync"
)

// ErrServerClosed is returned by Serve after a clean context-driven
// shutdown, mirroring net/http.ErrServerClosed.
var ErrServerClosed = errors.New("netutil: server closed")

// Serve accepts connections on ln and dispatches each to handle on its
// own goroutine until ctx is cancelled or the listener fails. On
// cancellation the listener and every live connection are closed, and
// Serve waits for all handlers to return before reporting
// ErrServerClosed — callers never leak connection goroutines.
//
// handle must not close over conn beyond its own lifetime; Serve closes
// the connection when handle returns.
func Serve(ctx context.Context, ln net.Listener, handle func(net.Conn)) error {
	var (
		mu     sync.Mutex
		conns  = make(map[net.Conn]struct{})
		wg     sync.WaitGroup
		closed bool
	)
	// The watcher closes the listener (unblocking Accept) and every live
	// connection (unblocking handler reads) the moment ctx is done.
	stop := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-ctx.Done():
			mu.Lock()
			closed = true
			for c := range conns {
				c.Close()
			}
			mu.Unlock()
			ln.Close()
		case <-stop:
		}
	}()

	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			acceptErr = err
			break
		}
		mu.Lock()
		if closed {
			mu.Unlock()
			conn.Close()
			break
		}
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
				conn.Close()
			}()
			handle(conn)
		}()
	}

	if ctx.Err() != nil {
		// Shutdown path: wait for the watcher to finish closing conns,
		// then for every handler to drain.
		<-watchDone
		wg.Wait()
		return ErrServerClosed
	}
	// Listener failed on its own; stop the watcher, close what's live,
	// and still drain handlers so the caller can't leak goroutines.
	close(stop)
	<-watchDone
	mu.Lock()
	closed = true
	for c := range conns {
		c.Close()
	}
	mu.Unlock()
	wg.Wait()
	return acceptErr
}
