// Package netutil holds the small amount of TCP server plumbing shared
// by the steering remote bridge and the dist coordinator: a context-aware
// accept loop with graceful shutdown that does not leak goroutines.
package netutil

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"
)

// ErrServerClosed is returned by Serve after a clean context-driven
// shutdown, mirroring net/http.ErrServerClosed.
var ErrServerClosed = errors.New("netutil: server closed")

// WithDeadlines wraps conn so every Read arms a fresh read deadline of
// read and every Write a fresh write deadline of write before touching
// the transport. It is an idle watchdog, not a transfer budget: a large
// message delivered slowly keeps making progress call by call, each one
// re-arming the deadline, while a half-open peer — reachable enough to
// keep TCP alive but never delivering another byte — fails the blocked
// call with a timeout error instead of wedging its reader forever. A
// zero (or negative) duration disables the watchdog for that direction.
//
// Note Write deadlines cover one Write call end to end: net.TCPConn
// retries partial writes internally under a single armed deadline, so
// the write window must cover a full message at worst-case link speed,
// not just first-byte progress.
func WithDeadlines(conn net.Conn, read, write time.Duration) net.Conn {
	if read <= 0 && write <= 0 {
		return conn
	}
	return &deadlineConn{Conn: conn, read: read, write: write}
}

type deadlineConn struct {
	net.Conn
	read, write time.Duration
}

func (dc *deadlineConn) Read(p []byte) (int, error) {
	if dc.read > 0 {
		if err := dc.Conn.SetReadDeadline(time.Now().Add(dc.read)); err != nil {
			return 0, err
		}
	}
	return dc.Conn.Read(p)
}

func (dc *deadlineConn) Write(p []byte) (int, error) {
	if dc.write > 0 {
		if err := dc.Conn.SetWriteDeadline(time.Now().Add(dc.write)); err != nil {
			return 0, err
		}
	}
	return dc.Conn.Write(p)
}

// Serve accepts connections on ln and dispatches each to handle on its
// own goroutine until ctx is cancelled or the listener fails. On
// cancellation the listener and every live connection are closed, and
// Serve waits for all handlers to return before reporting
// ErrServerClosed — callers never leak connection goroutines.
//
// handle must not close over conn beyond its own lifetime; Serve closes
// the connection when handle returns.
func Serve(ctx context.Context, ln net.Listener, handle func(net.Conn)) error {
	var (
		mu     sync.Mutex
		conns  = make(map[net.Conn]struct{})
		wg     sync.WaitGroup
		closed bool
	)
	// The watcher closes the listener (unblocking Accept) and every live
	// connection (unblocking handler reads) the moment ctx is done.
	stop := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-ctx.Done():
			mu.Lock()
			closed = true
			for c := range conns {
				c.Close()
			}
			mu.Unlock()
			ln.Close()
		case <-stop:
		}
	}()

	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			acceptErr = err
			break
		}
		mu.Lock()
		if closed {
			mu.Unlock()
			conn.Close()
			break
		}
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
				conn.Close()
			}()
			handle(conn)
		}()
	}

	if ctx.Err() != nil {
		// Shutdown path: wait for the watcher to finish closing conns,
		// then for every handler to drain.
		<-watchDone
		wg.Wait()
		return ErrServerClosed
	}
	// Listener failed on its own; stop the watcher, close what's live,
	// and still drain handlers so the caller can't leak goroutines.
	close(stop)
	<-watchDone
	mu.Lock()
	closed = true
	for c := range conns {
		c.Close()
	}
	mu.Unlock()
	wg.Wait()
	return acceptErr
}
