package netutil

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

func TestServeShutsDownCleanly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())

	var started, finished atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, ln, func(c net.Conn) {
			started.Add(1)
			defer finished.Add(1)
			buf := make([]byte, 1)
			c.Read(buf) // blocks until the shutdown closes the conn
		})
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	if got := finished.Load(); got != started.Load() {
		t.Fatalf("%d handlers finished, %d started — leak", got, started.Load())
	}
}

func TestServeReportsListenerError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- Serve(context.Background(), ln, func(net.Conn) {}) }()
	ln.Close()
	select {
	case err := <-done:
		if err == nil || errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve returned %v, want the accept error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after listener close")
	}
}
