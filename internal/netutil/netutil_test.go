package netutil

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

func TestServeShutsDownCleanly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())

	var started, finished atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, ln, func(c net.Conn) {
			started.Add(1)
			defer finished.Add(1)
			buf := make([]byte, 1)
			c.Read(buf) // blocks until the shutdown closes the conn
		})
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	if got := finished.Load(); got != started.Load() {
		t.Fatalf("%d handlers finished, %d started — leak", got, started.Load())
	}
}

func TestServeReportsListenerError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- Serve(context.Background(), ln, func(net.Conn) {}) }()
	ln.Close()
	select {
	case err := <-done:
		if err == nil || errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve returned %v, want the accept error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after listener close")
	}
}

func TestWithDeadlinesUnwedgesSilentPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// The half-open peer: accepts, then never sends a byte.
		defer conn.Close()
		time.Sleep(2 * time.Second)
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	conn := WithDeadlines(raw, 50*time.Millisecond, 50*time.Millisecond)

	start := time.Now()
	_, err = conn.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("read of a silent peer returned without error")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read err = %v, want a timeout", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("read blocked %v past its 50ms deadline", el)
	}
}

func TestWithDeadlinesRefreshesPerCall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Trickle bytes slower than the per-call deadline would allow a
		// single blocked read, but fast enough that every call makes
		// progress: the watchdog must not fire.
		for i := 0; i < 5; i++ {
			time.Sleep(30 * time.Millisecond)
			if _, err := conn.Write([]byte{byte(i)}); err != nil {
				return
			}
		}
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	conn := WithDeadlines(raw, 100*time.Millisecond, 100*time.Millisecond)
	buf := make([]byte, 1)
	for i := 0; i < 5; i++ {
		if _, err := conn.Read(buf); err != nil {
			t.Fatalf("read %d under per-call deadline refresh: %v", i, err)
		}
	}
}

func TestWithDeadlinesZeroIsPassthrough(t *testing.T) {
	c, s := net.Pipe()
	defer c.Close()
	defer s.Close()
	if got := WithDeadlines(c, 0, 0); got != c {
		t.Fatal("zero deadlines should return the conn unchanged")
	}
}
