package trace

// Append-only record streams: the framing the dist coordinator's
// write-ahead journal and checkpoint spool are built on. A stream is a
// magic header followed by [length][crc32][payload] records, so a
// reader can always tell a cleanly-ended file from one cut short by a
// crashed writer — the same torn-tail discipline the checkpoint reader
// applies, factored out so every durable dist artifact shares it.
//
// The crucial property is that ScanRecords never returns garbage: it
// yields the longest clean prefix of records plus the byte offset where
// that prefix ends, and reports anything after it (a half-written
// record, a corrupted CRC) as a typed tail error. Recovery truncates at
// the clean offset and appends from there.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"spice/internal/faultfs"
)

const (
	recordMagic = "SPJNL1"
	// maxRecordLen bounds a single record so a corrupted length field
	// cannot drive a multi-gigabyte allocation.
	maxRecordLen = 64 << 20
)

// RecordWriter appends framed records to w. It buffers internally;
// call Flush before relying on the bytes having reached w.
type RecordWriter struct {
	w     *bufio.Writer
	wrote bool
}

// NewRecordWriter returns a writer that emits the stream magic before
// the first record. Pass continuing=true when appending to a stream
// whose magic is already on disk (a reopened journal).
func NewRecordWriter(w io.Writer, continuing bool) *RecordWriter {
	return &RecordWriter{w: bufio.NewWriter(w), wrote: continuing}
}

// Append frames one record. Empty payloads are legal.
func (rw *RecordWriter) Append(payload []byte) error {
	if len(payload) > maxRecordLen {
		return fmt.Errorf("trace: record of %d bytes exceeds limit: %w", len(payload), ErrFormat)
	}
	if !rw.wrote {
		if _, err := rw.w.WriteString(recordMagic); err != nil {
			return err
		}
		rw.wrote = true
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := rw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := rw.w.Write(payload)
	return err
}

// Flush pushes buffered records to the underlying writer.
func (rw *RecordWriter) Flush() error { return rw.w.Flush() }

// Reset discards any buffered (possibly partially written) state and
// re-targets the writer at w — the repair path after a failed append:
// the caller truncates the file back to its last clean record boundary
// and Resets the writer over it. Pass continuing=false when the
// truncation removed the stream magic too.
func (rw *RecordWriter) Reset(w io.Writer, continuing bool) {
	rw.w.Reset(w)
	rw.wrote = continuing
}

// FramedLen returns the on-disk size of one record carrying payloadLen
// bytes, excluding the stream magic: header plus payload.
func FramedLen(payloadLen int) int64 { return 8 + int64(payloadLen) }

// MagicLen is the size of the stream magic that precedes the first
// record.
const MagicLen = int64(len(recordMagic))

// RecordReader reads framed records one at a time from a live stream —
// the form a network transport needs, where ScanRecords' read-to-EOF
// contract would block forever. Unlike the scan, a reader cannot
// distinguish a torn tail from a record that has not finished arriving;
// it reports a stream that ends mid-record as io.ErrUnexpectedEOF and
// leaves recovery policy to the caller.
type RecordReader struct {
	r     *bufio.Reader
	first bool
}

// NewRecordReader wraps r. If r is already a *bufio.Reader it is used
// directly — the transport handoff case, where buffered bytes read past
// a negotiation boundary must not be lost to a second buffer layer.
func NewRecordReader(r io.Reader) *RecordReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &RecordReader{r: br, first: true}
}

// Next returns the next record's payload. A clean end at a record
// boundary is io.EOF; an end inside a record is io.ErrUnexpectedEOF; a
// bad magic, oversized length, or checksum mismatch wraps ErrFormat.
func (rr *RecordReader) Next() ([]byte, error) {
	if rr.first {
		magic := make([]byte, len(recordMagic))
		if _, err := io.ReadFull(rr.r, magic); err != nil {
			if err == io.EOF {
				return nil, io.EOF // empty stream: no records at all
			}
			return nil, err
		}
		if string(magic) != recordMagic {
			return nil, fmt.Errorf("trace: not a record stream: %w", ErrFormat)
		}
		rr.first = false
	}
	var hdr [8]byte
	if _, err := io.ReadFull(rr.r, hdr[:]); err != nil {
		return nil, err // io.EOF at a boundary, ErrUnexpectedEOF inside
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxRecordLen {
		return nil, fmt.Errorf("trace: record length %d exceeds limit: %w", length, ErrFormat)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(rr.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("trace: record checksum mismatch: %w", ErrFormat)
	}
	return payload, nil
}

// RecordScan is the result of reading a record stream defensively.
type RecordScan struct {
	// Records is the longest clean prefix of intact records.
	Records [][]byte
	// CleanLen is the byte offset where that prefix ends — the length
	// a recovering writer should truncate the file to before appending.
	CleanLen int64
	// TailErr is nil for a cleanly-ended stream. A stream cut mid-record
	// (crashed writer, partial transfer) yields ErrTruncated; a record
	// whose CRC or length field is corrupt yields ErrFormat. Both wrap
	// the sentinel, so errors.Is works.
	TailErr error
	// TornBytes is how many trailing bytes the tail error covers.
	TornBytes int64
}

// ScanRecords reads a record stream to its end, tolerating a torn tail.
// A completely empty input is a fresh stream: zero records, CleanLen 0,
// no error. A stream that does not start with the record magic is
// foreign and yields ErrFormat as a hard error (not a RecordScan), so
// callers never truncate a file they do not own.
func ScanRecords(r io.Reader) (*RecordScan, error) {
	br := bufio.NewReader(r)
	scan := &RecordScan{}
	magic := make([]byte, len(recordMagic))
	n, err := io.ReadFull(br, magic)
	if err == io.EOF && n == 0 {
		return scan, nil // fresh stream
	}
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		// A few bytes of magic then nothing: torn before the first record.
		scan.TailErr = ErrTruncated
		scan.TornBytes = int64(n)
		return scan, nil
	}
	if err != nil {
		return nil, err
	}
	if string(magic) != recordMagic {
		return nil, fmt.Errorf("trace: not a record stream: %w", ErrFormat)
	}
	offset := int64(len(recordMagic))
	scan.CleanLen = offset
	for {
		var hdr [8]byte
		n, err := io.ReadFull(br, hdr[:])
		if err == io.EOF && n == 0 {
			return scan, nil // clean end at a record boundary
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			scan.TailErr = ErrTruncated
			scan.TornBytes = int64(n)
			return scan, nil
		}
		if err != nil {
			return nil, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordLen {
			// A corrupt length field: everything from here on is suspect.
			scan.TailErr = fmt.Errorf("trace: record length %d exceeds limit: %w", length, ErrFormat)
			scan.TornBytes = countRemaining(br, int64(len(hdr)))
			return scan, nil
		}
		payload := make([]byte, length)
		pn, err := io.ReadFull(br, payload)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			scan.TailErr = ErrTruncated
			scan.TornBytes = int64(len(hdr) + pn)
			return scan, nil
		}
		if err != nil {
			return nil, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			scan.TailErr = fmt.Errorf("trace: record checksum mismatch: %w", ErrFormat)
			scan.TornBytes = countRemaining(br, int64(len(hdr))+int64(length))
			return scan, nil
		}
		scan.Records = append(scan.Records, payload)
		offset += int64(len(hdr)) + int64(length)
		scan.CleanLen = offset
	}
}

// countRemaining drains br and returns consumed + whatever was left,
// sizing the torn region behind a corrupt record header.
func countRemaining(br *bufio.Reader, consumed int64) int64 {
	n, _ := io.Copy(io.Discard, br)
	return consumed + n
}

// ScanFile reads the record stream at path with ScanRecords. A missing
// file is a fresh stream (zero records, no error), so openers of
// durable logs — the dist journal, the control plane's campaign queue —
// share one code path for first start and recovery.
func ScanFile(path string) (*RecordScan, error) {
	return ScanFileFS(faultfs.OS, path)
}

// ScanFileFS is ScanFile through an injectable filesystem — the form
// the journals use so disk-fault chaos tests can interpose faultfs.
// Reads are never fault-injected, but routing them through the same FS
// keeps every durable-path syscall on one auditable surface.
func ScanFileFS(fsys faultfs.FS, path string) (*RecordScan, error) {
	data, err := faultfs.Or(fsys).ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return &RecordScan{}, nil
		}
		return nil, err
	}
	return ScanRecords(bytes.NewReader(data))
}
