// Package trace implements the on-disk formats SPICE uses to move data
// between the distributed pieces of the pipeline: trajectory frames
// (simulation → visualizer / archive), work logs (SMD runs → Jarzynski
// analysis), and checkpoints (steering-initiated checkpoint & clone).
//
// Formats are deliberately simple and self-describing:
//
//   - Trajectories: binary, little-endian, "SPTRJ1" magic, frame-per-record.
//   - Work logs: line-oriented text ("position work" pairs with a # header),
//     so they survive transfer between heterogeneous grid sites.
//   - Checkpoints: binary snapshot of positions + velocities + step + time.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"spice/internal/vec"
)

// Frame is one trajectory snapshot.
type Frame struct {
	Step int64
	Time float64 // ps
	Pos  []vec.V // Å
}

const trajMagic = "SPTRJ1"

// ErrFormat indicates a corrupted or foreign stream.
var ErrFormat = errors.New("trace: bad format")

// TrajectoryWriter streams frames to w.
type TrajectoryWriter struct {
	w     *bufio.Writer
	n     int // atoms per frame, fixed after first frame
	wrote bool
}

// NewTrajectoryWriter returns a writer that emits the SPTRJ1 header on the
// first frame.
func NewTrajectoryWriter(w io.Writer) *TrajectoryWriter {
	return &TrajectoryWriter{w: bufio.NewWriter(w)}
}

// WriteFrame appends one frame. All frames must have the same atom count.
func (tw *TrajectoryWriter) WriteFrame(f Frame) error {
	if !tw.wrote {
		if _, err := tw.w.WriteString(trajMagic); err != nil {
			return err
		}
		tw.n = len(f.Pos)
		if err := binary.Write(tw.w, binary.LittleEndian, int64(tw.n)); err != nil {
			return err
		}
		tw.wrote = true
	}
	if len(f.Pos) != tw.n {
		return fmt.Errorf("trace: frame has %d atoms, trajectory has %d", len(f.Pos), tw.n)
	}
	if err := binary.Write(tw.w, binary.LittleEndian, f.Step); err != nil {
		return err
	}
	if err := binary.Write(tw.w, binary.LittleEndian, f.Time); err != nil {
		return err
	}
	for _, p := range f.Pos {
		if err := binary.Write(tw.w, binary.LittleEndian, [3]float64{p.X, p.Y, p.Z}); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered frames to the underlying writer.
func (tw *TrajectoryWriter) Flush() error { return tw.w.Flush() }

// TrajectoryReader reads frames written by TrajectoryWriter.
type TrajectoryReader struct {
	r      *bufio.Reader
	n      int
	header bool
}

// NewTrajectoryReader wraps r.
func NewTrajectoryReader(r io.Reader) *TrajectoryReader {
	return &TrajectoryReader{r: bufio.NewReader(r)}
}

func (tr *TrajectoryReader) readHeader() error {
	buf := make([]byte, len(trajMagic))
	if _, err := io.ReadFull(tr.r, buf); err != nil {
		return err
	}
	if string(buf) != trajMagic {
		return ErrFormat
	}
	var n int64
	if err := binary.Read(tr.r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if n < 0 || n > 1<<30 {
		return ErrFormat
	}
	tr.n = int(n)
	tr.header = true
	return nil
}

// ReadFrame returns the next frame, or io.EOF at end of stream.
func (tr *TrajectoryReader) ReadFrame() (Frame, error) {
	if !tr.header {
		if err := tr.readHeader(); err != nil {
			return Frame{}, err
		}
	}
	var f Frame
	if err := binary.Read(tr.r, binary.LittleEndian, &f.Step); err != nil {
		return Frame{}, err // io.EOF propagates cleanly here
	}
	if err := binary.Read(tr.r, binary.LittleEndian, &f.Time); err != nil {
		return Frame{}, unexpected(err)
	}
	f.Pos = make([]vec.V, tr.n)
	for i := range f.Pos {
		var p [3]float64
		if err := binary.Read(tr.r, binary.LittleEndian, &p); err != nil {
			return Frame{}, unexpected(err)
		}
		f.Pos[i] = vec.V{X: p[0], Y: p[1], Z: p[2]}
	}
	return f, nil
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// WorkSample is one (reaction-coordinate, accumulated-work) pair from an
// SMD pull, with the trajectory's parameters attached so downstream
// analysis can group samples.
type WorkSample struct {
	Lambda float64 // scheduled pulling-atom position along the axis, Å
	Z      float64 // actual COM position, Å
	Work   float64 // accumulated external work, kcal/mol
}

// WorkLog is the complete record of one SMD pull.
type WorkLog struct {
	Kappa    float64 // spring constant, kcal/mol/Å²
	Velocity float64 // pulling velocity, Å/ps
	Seed     uint64
	Samples  []WorkSample
}

// WriteWorkLog writes wl as line-oriented text.
func WriteWorkLog(w io.Writer, wl *WorkLog) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# spice-worklog v1 kappa=%.17g velocity=%.17g seed=%d n=%d\n",
		wl.Kappa, wl.Velocity, wl.Seed, len(wl.Samples)); err != nil {
		return err
	}
	for _, s := range wl.Samples {
		if _, err := fmt.Fprintf(bw, "%.17g %.17g %.17g\n", s.Lambda, s.Z, s.Work); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWorkLog parses a work log written by WriteWorkLog.
func ReadWorkLog(r io.Reader) (*WorkLog, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.ErrUnexpectedEOF
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "# spice-worklog v1 ") {
		return nil, ErrFormat
	}
	wl := &WorkLog{}
	n := -1
	for _, field := range strings.Fields(header[len("# spice-worklog v1 "):]) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return nil, ErrFormat
		}
		var err error
		switch k {
		case "kappa":
			wl.Kappa, err = strconv.ParseFloat(v, 64)
		case "velocity":
			wl.Velocity, err = strconv.ParseFloat(v, 64)
		case "seed":
			wl.Seed, err = strconv.ParseUint(v, 10, 64)
		case "n":
			n, err = strconv.Atoi(v)
		default:
			// Unknown keys are tolerated for forward compatibility.
		}
		if err != nil {
			return nil, fmt.Errorf("trace: work log header field %q: %w", field, err)
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: work log line %q: %w", line, ErrFormat)
		}
		var s WorkSample
		var err error
		if s.Lambda, err = strconv.ParseFloat(fields[0], 64); err != nil {
			return nil, err
		}
		if s.Z, err = strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, err
		}
		if s.Work, err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, err
		}
		wl.Samples = append(wl.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n >= 0 && n != len(wl.Samples) {
		return nil, fmt.Errorf("trace: work log declared %d samples, found %d: %w", n, len(wl.Samples), ErrFormat)
	}
	return wl, nil
}

// Checkpoint is a restartable snapshot of a simulation's dynamical state.
// The steering layer (RealityGrid "checkpoint and clone") serializes these
// to move or duplicate running simulations across grid resources.
type Checkpoint struct {
	Step int64
	Time float64
	Pos  []vec.V
	Vel  []vec.V
	Seed uint64 // RNG reseed value for the clone; 0 keeps the original stream
}

const ckptMagic = "SPCKP1"

// WriteCheckpoint serializes c to w.
func WriteCheckpoint(w io.Writer, c *Checkpoint) error {
	if len(c.Pos) != len(c.Vel) {
		return fmt.Errorf("trace: checkpoint pos/vel length mismatch %d != %d", len(c.Pos), len(c.Vel))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return err
	}
	hdr := []any{c.Step, c.Time, c.Seed, int64(len(c.Pos))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, set := range [][]vec.V{c.Pos, c.Vel} {
		for _, p := range set {
			if err := binary.Write(bw, binary.LittleEndian, [3]float64{p.X, p.Y, p.Z}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	buf := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	if string(buf) != ckptMagic {
		return nil, ErrFormat
	}
	var c Checkpoint
	var n int64
	if err := binary.Read(br, binary.LittleEndian, &c.Step); err != nil {
		return nil, unexpected(err)
	}
	if err := binary.Read(br, binary.LittleEndian, &c.Time); err != nil {
		return nil, unexpected(err)
	}
	if err := binary.Read(br, binary.LittleEndian, &c.Seed); err != nil {
		return nil, unexpected(err)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, unexpected(err)
	}
	if n < 0 || n > 1<<30 {
		return nil, ErrFormat
	}
	c.Pos = make([]vec.V, n)
	c.Vel = make([]vec.V, n)
	for _, set := range [][]vec.V{c.Pos, c.Vel} {
		for i := range set {
			var p [3]float64
			if err := binary.Read(br, binary.LittleEndian, &p); err != nil {
				return nil, unexpected(err)
			}
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) || math.IsNaN(p[2]) {
				return nil, fmt.Errorf("trace: checkpoint contains NaN: %w", ErrFormat)
			}
			set[i] = vec.V{X: p[0], Y: p[1], Z: p[2]}
		}
	}
	return &c, nil
}
