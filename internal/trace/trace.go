// Package trace implements the on-disk formats SPICE uses to move data
// between the distributed pieces of the pipeline: trajectory frames
// (simulation → visualizer / archive), work logs (SMD runs → Jarzynski
// analysis), and checkpoints (steering-initiated checkpoint & clone).
//
// Formats are deliberately simple and self-describing:
//
//   - Trajectories: binary, little-endian, "SPTRJ1" magic, frame-per-record.
//   - Work logs: line-oriented text ("position work" pairs with a # header),
//     so they survive transfer between heterogeneous grid sites.
//   - Checkpoints: binary snapshot of positions + velocities + step + time.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"spice/internal/vec"
)

// Frame is one trajectory snapshot.
type Frame struct {
	Step int64
	Time float64 // ps
	Pos  []vec.V // Å
}

const trajMagic = "SPTRJ1"

// ErrFormat indicates a corrupted or foreign stream.
var ErrFormat = errors.New("trace: bad format")

// ErrTruncated indicates a stream that ended mid-record — a partial
// transfer or a file cut short by a crashed writer. It wraps
// io.ErrUnexpectedEOF, so errors.Is works with either sentinel. Consumers
// that resume from checkpoints (the dist runtime) rely on this being a
// typed, detectable condition rather than a panic or silent garbage.
var ErrTruncated = fmt.Errorf("trace: truncated stream: %w", io.ErrUnexpectedEOF)

// truncated converts an end-of-stream error seen mid-record into
// ErrTruncated; other errors pass through.
func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return err
}

// TrajectoryWriter streams frames to w.
type TrajectoryWriter struct {
	w     *bufio.Writer
	n     int // atoms per frame, fixed after first frame
	wrote bool
}

// NewTrajectoryWriter returns a writer that emits the SPTRJ1 header on the
// first frame.
func NewTrajectoryWriter(w io.Writer) *TrajectoryWriter {
	return &TrajectoryWriter{w: bufio.NewWriter(w)}
}

// WriteFrame appends one frame. All frames must have the same atom count.
func (tw *TrajectoryWriter) WriteFrame(f Frame) error {
	if !tw.wrote {
		if _, err := tw.w.WriteString(trajMagic); err != nil {
			return err
		}
		tw.n = len(f.Pos)
		if err := binary.Write(tw.w, binary.LittleEndian, int64(tw.n)); err != nil {
			return err
		}
		tw.wrote = true
	}
	if len(f.Pos) != tw.n {
		return fmt.Errorf("trace: frame has %d atoms, trajectory has %d", len(f.Pos), tw.n)
	}
	if err := binary.Write(tw.w, binary.LittleEndian, f.Step); err != nil {
		return err
	}
	if err := binary.Write(tw.w, binary.LittleEndian, f.Time); err != nil {
		return err
	}
	for _, p := range f.Pos {
		if err := binary.Write(tw.w, binary.LittleEndian, [3]float64{p.X, p.Y, p.Z}); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered frames to the underlying writer.
func (tw *TrajectoryWriter) Flush() error { return tw.w.Flush() }

// TrajectoryReader reads frames written by TrajectoryWriter.
type TrajectoryReader struct {
	r      *bufio.Reader
	n      int
	header bool
}

// NewTrajectoryReader wraps r.
func NewTrajectoryReader(r io.Reader) *TrajectoryReader {
	return &TrajectoryReader{r: bufio.NewReader(r)}
}

func (tr *TrajectoryReader) readHeader() error {
	buf := make([]byte, len(trajMagic))
	if _, err := io.ReadFull(tr.r, buf); err != nil {
		return err
	}
	if string(buf) != trajMagic {
		return ErrFormat
	}
	var n int64
	if err := binary.Read(tr.r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if n < 0 || n > 1<<30 {
		return ErrFormat
	}
	tr.n = int(n)
	tr.header = true
	return nil
}

// ReadFrame returns the next frame, or io.EOF at end of stream.
func (tr *TrajectoryReader) ReadFrame() (Frame, error) {
	if !tr.header {
		if err := tr.readHeader(); err != nil {
			return Frame{}, err
		}
	}
	var f Frame
	if err := binary.Read(tr.r, binary.LittleEndian, &f.Step); err != nil {
		return Frame{}, err // io.EOF propagates cleanly here
	}
	if err := binary.Read(tr.r, binary.LittleEndian, &f.Time); err != nil {
		return Frame{}, unexpected(err)
	}
	f.Pos = make([]vec.V, tr.n)
	for i := range f.Pos {
		var p [3]float64
		if err := binary.Read(tr.r, binary.LittleEndian, &p); err != nil {
			return Frame{}, unexpected(err)
		}
		f.Pos[i] = vec.V{X: p[0], Y: p[1], Z: p[2]}
	}
	return f, nil
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// WorkSample is one (reaction-coordinate, accumulated-work) pair from an
// SMD pull, with the trajectory's parameters attached so downstream
// analysis can group samples.
type WorkSample struct {
	Lambda float64 // scheduled pulling-atom position along the axis, Å
	Z      float64 // actual COM position, Å
	Work   float64 // accumulated external work, kcal/mol
}

// WorkLog is the complete record of one SMD pull.
type WorkLog struct {
	Kappa    float64 // spring constant, kcal/mol/Å²
	Velocity float64 // pulling velocity, Å/ps
	Seed     uint64
	Samples  []WorkSample
}

// WriteWorkLog writes wl as line-oriented text.
func WriteWorkLog(w io.Writer, wl *WorkLog) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# spice-worklog v1 kappa=%.17g velocity=%.17g seed=%d n=%d\n",
		wl.Kappa, wl.Velocity, wl.Seed, len(wl.Samples)); err != nil {
		return err
	}
	for _, s := range wl.Samples {
		if _, err := fmt.Fprintf(bw, "%.17g %.17g %.17g\n", s.Lambda, s.Z, s.Work); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWorkLog parses a work log written by WriteWorkLog.
func ReadWorkLog(r io.Reader) (*WorkLog, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.ErrUnexpectedEOF
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "# spice-worklog v1 ") {
		return nil, ErrFormat
	}
	wl := &WorkLog{}
	n := -1
	for _, field := range strings.Fields(header[len("# spice-worklog v1 "):]) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return nil, ErrFormat
		}
		var err error
		switch k {
		case "kappa":
			wl.Kappa, err = strconv.ParseFloat(v, 64)
		case "velocity":
			wl.Velocity, err = strconv.ParseFloat(v, 64)
		case "seed":
			wl.Seed, err = strconv.ParseUint(v, 10, 64)
		case "n":
			n, err = strconv.Atoi(v)
		default:
			// Unknown keys are tolerated for forward compatibility.
		}
		if err != nil {
			return nil, fmt.Errorf("trace: work log header field %q: %w", field, err)
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: work log line %q: %w", line, ErrFormat)
		}
		var s WorkSample
		var err error
		if s.Lambda, err = strconv.ParseFloat(fields[0], 64); err != nil {
			return nil, err
		}
		if s.Z, err = strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, err
		}
		if s.Work, err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, err
		}
		wl.Samples = append(wl.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n >= 0 && n != len(wl.Samples) {
		return nil, fmt.Errorf("trace: work log declared %d samples, found %d: %w", n, len(wl.Samples), ErrFormat)
	}
	return wl, nil
}

// Checkpoint is a restartable snapshot of a simulation's dynamical state.
// The steering layer (RealityGrid "checkpoint and clone") serializes these
// to move or duplicate running simulations across grid resources, and the
// dist runtime ships them between coordinator and workers so a reassigned
// job resumes instead of restarting.
type Checkpoint struct {
	Step int64
	Time float64
	Pos  []vec.V
	Vel  []vec.V
	Seed uint64 // RNG reseed value for the clone; 0 keeps the original stream
	// RNG is the serialized state of the engine's live random streams
	// (md.Engine.Checkpoint fills it). nil means "reseed from Seed" —
	// what clones want. When present, a restore resumes the exact random
	// sequence, which bit-exact job resume depends on.
	RNG []uint64
	// NeighborRef holds the neighbor-list reference positions at
	// checkpoint time (len 0 or len(Pos)). Restoring them rebuilds the
	// exact pair list the uninterrupted run was using, so force sums —
	// which are order-sensitive in floating point — stay bit-identical
	// across a resume.
	NeighborRef []vec.V
	// Force holds the integrator's cached force array (len 0 or
	// len(Pos)). BAOAB/velocity-Verlet carry f(t) across the step
	// boundary, and steering layers (the SMD spring's λ) may have
	// advanced since that evaluation — so the cached values cannot be
	// reproduced by re-evaluating at restore time. Carrying them makes
	// the first resumed step identical to the uninterrupted one.
	Force []vec.V
}

const (
	ckptMagicV1 = "SPCKP1"
	ckptMagic   = "SPCKP2"
	// maxCkptRNG bounds the RNG block a reader will accept.
	maxCkptRNG = 1 << 10
)

// WriteCheckpoint serializes c to w in the SPCKP2 format.
func WriteCheckpoint(w io.Writer, c *Checkpoint) error {
	if len(c.Pos) != len(c.Vel) {
		return fmt.Errorf("trace: checkpoint pos/vel length mismatch %d != %d", len(c.Pos), len(c.Vel))
	}
	if len(c.NeighborRef) != 0 && len(c.NeighborRef) != len(c.Pos) {
		return fmt.Errorf("trace: checkpoint neighbor ref has %d atoms, state has %d", len(c.NeighborRef), len(c.Pos))
	}
	if len(c.Force) != 0 && len(c.Force) != len(c.Pos) {
		return fmt.Errorf("trace: checkpoint force block has %d atoms, state has %d", len(c.Force), len(c.Pos))
	}
	if len(c.RNG) > maxCkptRNG {
		return fmt.Errorf("trace: checkpoint RNG block too large (%d words)", len(c.RNG))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return err
	}
	hdr := []any{c.Step, c.Time, c.Seed, int64(len(c.Pos)), int64(len(c.RNG)), int64(len(c.NeighborRef)), int64(len(c.Force))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, set := range [][]vec.V{c.Pos, c.Vel, c.NeighborRef, c.Force} {
		for _, p := range set {
			if err := binary.Write(bw, binary.LittleEndian, [3]float64{p.X, p.Y, p.Z}); err != nil {
				return err
			}
		}
	}
	for _, v := range c.RNG {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint. It
// accepts both the current SPCKP2 format and the legacy SPCKP1 layout
// (which carries no RNG or neighbor-ref blocks). Truncated input yields
// ErrTruncated; foreign or internally inconsistent input yields ErrFormat.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	buf := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, truncated(err)
	}
	v2 := string(buf) == ckptMagic
	if !v2 && string(buf) != ckptMagicV1 {
		return nil, ErrFormat
	}
	var c Checkpoint
	var n, nrng, nref, nfrc int64
	ints := []any{&c.Step, &c.Time, &c.Seed, &n}
	if v2 {
		ints = append(ints, &nrng, &nref, &nfrc)
	}
	for _, p := range ints {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, truncated(err)
		}
	}
	if n < 0 || n > 1<<30 {
		return nil, ErrFormat
	}
	if nrng < 0 || nrng > maxCkptRNG {
		return nil, ErrFormat
	}
	if nref != 0 && nref != n {
		return nil, ErrFormat
	}
	if nfrc != 0 && nfrc != n {
		return nil, ErrFormat
	}
	c.Pos = make([]vec.V, n)
	c.Vel = make([]vec.V, n)
	c.NeighborRef = make([]vec.V, nref)
	c.Force = make([]vec.V, nfrc)
	for _, set := range [][]vec.V{c.Pos, c.Vel, c.NeighborRef, c.Force} {
		for i := range set {
			var p [3]float64
			if err := binary.Read(br, binary.LittleEndian, &p); err != nil {
				return nil, truncated(err)
			}
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) || math.IsNaN(p[2]) {
				return nil, fmt.Errorf("trace: checkpoint contains NaN: %w", ErrFormat)
			}
			set[i] = vec.V{X: p[0], Y: p[1], Z: p[2]}
		}
	}
	if nref == 0 {
		c.NeighborRef = nil
	}
	if nfrc == 0 {
		c.Force = nil
	}
	if nrng > 0 {
		c.RNG = make([]uint64, nrng)
		for i := range c.RNG {
			if err := binary.Read(br, binary.LittleEndian, &c.RNG[i]); err != nil {
				return nil, truncated(err)
			}
		}
	}
	return &c, nil
}
