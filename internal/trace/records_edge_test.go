package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestScanRecordsZeroLengthFile pins the fresh-stream contract for a
// file that exists but is empty (a journal created and killed before
// its first flush): zero records, CleanLen 0, no tail error — both
// through ScanRecords and through ScanFileFS on a real file.
func TestScanRecordsZeroLengthFile(t *testing.T) {
	scan, err := ScanRecords(bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 0 || scan.CleanLen != 0 || scan.TailErr != nil || scan.TornBytes != 0 {
		t.Fatalf("zero-length scan = %+v, want pristine fresh stream", scan)
	}

	path := filepath.Join(t.TempDir(), "empty.log")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	scan, err = ScanFileFS(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 0 || scan.CleanLen != 0 || scan.TailErr != nil {
		t.Fatalf("zero-length file scan = %+v, want fresh stream", scan)
	}
}

// TestScanRecordsStrayByteAfterCleanFrame pins the boundary case of a
// single intact record followed by one stray byte: the record is
// recovered, the stray byte is reported as exactly one torn byte, and
// CleanLen points at the record boundary in front of it.
func TestScanRecordsStrayByteAfterCleanFrame(t *testing.T) {
	var buf bytes.Buffer
	rw := NewRecordWriter(&buf, false)
	payload := []byte(`{"t":"noop"}`)
	if err := rw.Append(payload); err != nil {
		t.Fatal(err)
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	cleanLen := int64(buf.Len())
	buf.WriteByte(0x7f)

	scan, err := ScanRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 1 || !bytes.Equal(scan.Records[0], payload) {
		t.Fatalf("clean frame not recovered: %d records", len(scan.Records))
	}
	if !errors.Is(scan.TailErr, ErrTruncated) {
		t.Fatalf("TailErr = %v, want ErrTruncated", scan.TailErr)
	}
	if scan.TornBytes != 1 {
		t.Fatalf("TornBytes = %d, want 1", scan.TornBytes)
	}
	if scan.CleanLen != cleanLen {
		t.Fatalf("CleanLen = %d, want %d", scan.CleanLen, cleanLen)
	}
	if scan.CleanLen != MagicLen+FramedLen(len(payload)) {
		t.Fatalf("CleanLen = %d, inconsistent with MagicLen+FramedLen = %d",
			scan.CleanLen, MagicLen+FramedLen(len(payload)))
	}
}
