package trace

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

func framedStream(t *testing.T, payloads ...[]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	rw := NewRecordWriter(&buf, false)
	for _, p := range payloads {
		if err := rw.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRecordStreamRoundTrip(t *testing.T) {
	want := [][]byte{[]byte("alpha"), {}, []byte(`{"t":"done"}`), bytes.Repeat([]byte{0xAB}, 4096)}
	scan, err := ScanRecords(bytes.NewReader(framedStream(t, want...)))
	if err != nil {
		t.Fatal(err)
	}
	if scan.TailErr != nil {
		t.Fatalf("clean stream reported tail error %v", scan.TailErr)
	}
	if len(scan.Records) != len(want) {
		t.Fatalf("got %d records, want %d", len(scan.Records), len(want))
	}
	for i := range want {
		if !bytes.Equal(scan.Records[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, scan.Records[i], want[i])
		}
	}
}

func TestRecordStreamEmptyIsFresh(t *testing.T) {
	scan, err := ScanRecords(bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 0 || scan.CleanLen != 0 || scan.TailErr != nil {
		t.Fatalf("empty stream scan = %+v", scan)
	}
}

func TestRecordStreamForeignMagic(t *testing.T) {
	if _, err := ScanRecords(bytes.NewReader([]byte("NOTJNLxxxxxxxx"))); !errors.Is(err, ErrFormat) {
		t.Fatalf("foreign stream err = %v, want ErrFormat", err)
	}
}

// TestRecordStreamTruncatedAtEveryOffset mirrors the checkpoint
// truncation test: cutting the stream at any byte after the clean
// prefix of records must surface a typed tail error, keep every record
// before the cut, and report a CleanLen a writer can truncate to.
func TestRecordStreamTruncatedAtEveryOffset(t *testing.T) {
	payloads := [][]byte{[]byte("first"), []byte("second-longer-record"), []byte("third")}
	data := framedStream(t, payloads...)
	// Byte offset where the last record begins (its 8-byte header).
	lastStart := len(data) - 8 - len(payloads[2])
	// Record boundaries are clean ends: a file cut exactly there is
	// indistinguishable from one that legitimately stopped writing.
	boundaries := map[int]bool{len(recordMagic): true}
	off := len(recordMagic)
	for _, p := range payloads {
		off += 8 + len(p)
		boundaries[off] = true
	}
	// cut 0 is an empty file — a fresh stream, not a torn one.
	for cut := 1; cut < len(data); cut++ {
		scan, err := ScanRecords(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut %d: hard error %v", cut, err)
		}
		if boundaries[cut] {
			if scan.TailErr != nil || scan.CleanLen != int64(cut) {
				t.Fatalf("cut %d (boundary): tail = %v, CleanLen = %d", cut, scan.TailErr, scan.CleanLen)
			}
			continue
		}
		if scan.TailErr == nil {
			t.Fatalf("cut %d/%d: no tail error", cut, len(data))
		}
		if !errors.Is(scan.TailErr, ErrTruncated) {
			t.Fatalf("cut %d: tail err = %v, want ErrTruncated", cut, scan.TailErr)
		}
		if int64(cut) != scan.CleanLen+scan.TornBytes {
			t.Fatalf("cut %d: CleanLen %d + TornBytes %d != cut", cut, scan.CleanLen, scan.TornBytes)
		}
		// Cuts inside the final record keep the first two records intact.
		if cut >= lastStart && len(scan.Records) != 2 {
			t.Fatalf("cut %d (inside final record): kept %d records, want 2", cut, len(scan.Records))
		}
		for i, rec := range scan.Records {
			if !bytes.Equal(rec, payloads[i]) {
				t.Fatalf("cut %d: surviving record %d corrupted: %q", cut, i, rec)
			}
		}
	}
}

func TestRecordStreamCorruptCRC(t *testing.T) {
	payloads := [][]byte{[]byte("keep-me"), []byte("corrupt-me")}
	data := framedStream(t, payloads...)
	// Flip a payload byte of the final record.
	data[len(data)-1] ^= 0xFF
	scan, err := ScanRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(scan.TailErr, ErrFormat) {
		t.Fatalf("tail err = %v, want ErrFormat", scan.TailErr)
	}
	if len(scan.Records) != 1 || !bytes.Equal(scan.Records[0], payloads[0]) {
		t.Fatalf("surviving records = %q", scan.Records)
	}
	if scan.TornBytes == 0 {
		t.Fatal("corrupt tail reported zero torn bytes")
	}
}

// TestRecordWriterContinuing appends to an existing stream without
// re-emitting the magic — the reopened-journal path.
func TestRecordWriterContinuing(t *testing.T) {
	var buf bytes.Buffer
	rw := NewRecordWriter(&buf, false)
	if err := rw.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	rw2 := NewRecordWriter(&buf, true)
	if err := rw2.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := rw2.Flush(); err != nil {
		t.Fatal(err)
	}
	scan, err := ScanRecords(bytes.NewReader(buf.Bytes()))
	if err != nil || scan.TailErr != nil {
		t.Fatalf("scan err = %v tail = %v", err, scan.TailErr)
	}
	if len(scan.Records) != 2 || string(scan.Records[1]) != "two" {
		t.Fatalf("records = %q", scan.Records)
	}
}

func TestScanFile(t *testing.T) {
	dir := t.TempDir()

	// A missing file is a fresh stream, not an error.
	scan, err := ScanFile(dir + "/absent.log")
	if err != nil {
		t.Fatalf("missing file: %v", err)
	}
	if len(scan.Records) != 0 || scan.CleanLen != 0 || scan.TailErr != nil {
		t.Fatalf("missing file scan = %+v, want fresh stream", scan)
	}

	// A real stream round-trips, including a torn tail.
	data := framedStream(t, []byte("one"), []byte("two"))
	path := dir + "/stream.log"
	if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	scan, err = ScanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 1 || string(scan.Records[0]) != "one" {
		t.Fatalf("records = %q, want [one]", scan.Records)
	}
	if !errors.Is(scan.TailErr, ErrTruncated) {
		t.Fatalf("tail err = %v, want ErrTruncated", scan.TailErr)
	}

	// Foreign bytes are a hard error, same as ScanRecords.
	foreign := dir + "/foreign.log"
	if err := os.WriteFile(foreign, []byte("not a record stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanFile(foreign); !errors.Is(err, ErrFormat) {
		t.Fatalf("foreign file err = %v, want ErrFormat", err)
	}
}
