package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"spice/internal/vec"
	"spice/internal/xrand"
)

func randFrame(rng *xrand.Source, n int, step int64) Frame {
	f := Frame{Step: step, Time: float64(step) * 0.01, Pos: make([]vec.V, n)}
	for i := range f.Pos {
		f.Pos[i] = vec.V{X: rng.NormFloat64() * 10, Y: rng.NormFloat64() * 10, Z: rng.NormFloat64() * 10}
	}
	return f
}

func TestTrajectoryRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	var buf bytes.Buffer
	w := NewTrajectoryWriter(&buf)
	var frames []Frame
	for i := 0; i < 7; i++ {
		f := randFrame(rng, 13, int64(i*100))
		frames = append(frames, f)
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewTrajectoryReader(&buf)
	for i := 0; ; i++ {
		f, err := r.ReadFrame()
		if err == io.EOF {
			if i != len(frames) {
				t.Fatalf("read %d frames, wrote %d", i, len(frames))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if f.Step != frames[i].Step || f.Time != frames[i].Time {
			t.Fatalf("frame %d header mismatch", i)
		}
		for j := range f.Pos {
			if f.Pos[j] != frames[i].Pos[j] {
				t.Fatalf("frame %d atom %d: %v != %v", i, j, f.Pos[j], frames[i].Pos[j])
			}
		}
	}
}

func TestTrajectoryAtomCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewTrajectoryWriter(&buf)
	if err := w.WriteFrame(Frame{Pos: make([]vec.V, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(Frame{Pos: make([]vec.V, 4)}); err == nil {
		t.Fatal("atom-count change should error")
	}
}

func TestTrajectoryBadMagic(t *testing.T) {
	r := NewTrajectoryReader(strings.NewReader("NOTRJX\x00\x00\x00\x00\x00\x00\x00\x00"))
	if _, err := r.ReadFrame(); err != ErrFormat {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

func TestTrajectoryTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewTrajectoryWriter(&buf)
	if err := w.WriteFrame(randFrame(xrand.New(2), 5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r := NewTrajectoryReader(bytes.NewReader(data[:len(data)-8]))
	if _, err := r.ReadFrame(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated read err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestWorkLogRoundTrip(t *testing.T) {
	wl := &WorkLog{Kappa: 1.4393, Velocity: 0.0125, Seed: 42}
	rng := xrand.New(3)
	for i := 0; i < 50; i++ {
		wl.Samples = append(wl.Samples, WorkSample{
			Lambda: float64(i) * 0.2,
			Z:      float64(i)*0.2 + rng.NormFloat64()*0.1,
			Work:   rng.NormFloat64() * 5,
		})
	}
	var buf bytes.Buffer
	if err := WriteWorkLog(&buf, wl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kappa != wl.Kappa || got.Velocity != wl.Velocity || got.Seed != wl.Seed {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Samples) != len(wl.Samples) {
		t.Fatalf("samples %d != %d", len(got.Samples), len(wl.Samples))
	}
	for i := range got.Samples {
		if got.Samples[i] != wl.Samples[i] {
			t.Fatalf("sample %d: %+v != %+v", i, got.Samples[i], wl.Samples[i])
		}
	}
}

func TestWorkLogPropertyRoundTrip(t *testing.T) {
	f := func(kappa, velocity float64, seed uint64, vals []float64) bool {
		if math.IsNaN(kappa) || math.IsInf(kappa, 0) || math.IsNaN(velocity) || math.IsInf(velocity, 0) {
			return true
		}
		wl := &WorkLog{Kappa: kappa, Velocity: velocity, Seed: seed}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			wl.Samples = append(wl.Samples, WorkSample{Lambda: float64(i), Z: v, Work: -v})
		}
		var buf bytes.Buffer
		if err := WriteWorkLog(&buf, wl); err != nil {
			return false
		}
		got, err := ReadWorkLog(&buf)
		if err != nil {
			return false
		}
		if got.Kappa != kappa || got.Velocity != velocity || got.Seed != seed || len(got.Samples) != len(wl.Samples) {
			return false
		}
		for i := range got.Samples {
			if got.Samples[i] != wl.Samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWorkLogRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"hello\n1 2 3\n",
		"# spice-worklog v1 kappa=1 velocity=1 seed=0 n=2\n1 2 3\n", // wrong count
		"# spice-worklog v1 kappa=1 velocity=1 seed=0 n=1\n1 2\n",   // wrong columns
		"# spice-worklog v1 kappa=abc velocity=1 seed=0 n=0\n",      // bad float
	}
	for i, c := range cases {
		if _, err := ReadWorkLog(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestWorkLogSkipsCommentsAndBlanks(t *testing.T) {
	in := "# spice-worklog v1 kappa=1 velocity=2 seed=3 n=1\n\n# comment\n0.5 0.6 0.7\n"
	wl, err := ReadWorkLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Samples) != 1 || wl.Samples[0].Work != 0.7 {
		t.Fatalf("got %+v", wl)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	rng := xrand.New(4)
	c := &Checkpoint{Step: 12345, Time: 67.25, Seed: 99}
	for i := 0; i < 20; i++ {
		c.Pos = append(c.Pos, vec.V{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()})
		c.Vel = append(c.Vel, vec.V{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()})
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != c.Step || got.Time != c.Time || got.Seed != c.Seed {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range c.Pos {
		if got.Pos[i] != c.Pos[i] || got.Vel[i] != c.Vel[i] {
			t.Fatalf("state mismatch at %d", i)
		}
	}
}

func TestCheckpointLengthMismatch(t *testing.T) {
	c := &Checkpoint{Pos: make([]vec.V, 2), Vel: make([]vec.V, 3)}
	if err := WriteCheckpoint(io.Discard, c); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestCheckpointRejectsNaN(t *testing.T) {
	c := &Checkpoint{Pos: []vec.V{{X: math.NaN()}}, Vel: []vec.V{{}}}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(&buf); err == nil {
		t.Fatal("NaN checkpoint should be rejected on read")
	}
}

func TestCheckpointBadMagic(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("XXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXX")); err != ErrFormat {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

func TestCheckpointTruncated(t *testing.T) {
	c := &Checkpoint{Step: 1, Pos: make([]vec.V, 4), Vel: make([]vec.V, 4)}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	got, err := ReadCheckpoint(bytes.NewReader(data[:len(data)-4]))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// ErrTruncated wraps io.ErrUnexpectedEOF for pre-existing callers.
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v should wrap io.ErrUnexpectedEOF", err)
	}
	if got != nil {
		t.Fatal("truncated read returned a checkpoint")
	}
}

func TestCheckpointTruncatedAtEveryPrefix(t *testing.T) {
	c := &Checkpoint{
		Step: 7, Time: 1.5, Seed: 3,
		Pos:         []vec.V{{X: 1}, {Y: 2}},
		Vel:         []vec.V{{Z: 3}, {X: 4}},
		RNG:         []uint64{1, 2, 3, 4, 5, 6},
		NeighborRef: []vec.V{{X: 1}, {Y: 2}},
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		_, err := ReadCheckpoint(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", cut, len(data))
		}
		// Every truncation point must yield the typed error, never a
		// panic or silent garbage. (A cut inside the magic can also
		// legitimately classify as ErrFormat-with-enough-bytes, but with
		// a 6-byte magic any strict prefix is a short read.)
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrFormat) {
			t.Fatalf("prefix %d: err = %v, want ErrTruncated or ErrFormat", cut, err)
		}
	}
}

func TestCheckpointRNGAndRefRoundTrip(t *testing.T) {
	c := &Checkpoint{
		Step: 42, Time: 0.5, Seed: 9,
		Pos:         []vec.V{{X: 1, Y: 2, Z: 3}, {X: -1}},
		Vel:         []vec.V{{Y: 0.25}, {Z: -0.125}},
		RNG:         []uint64{0xdead, 0xbeef, 1, 0, 0x7fffffffffffffff, 5},
		NeighborRef: []vec.V{{X: 1.0000001, Y: 2, Z: 3}, {X: -1.5}},
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.RNG) != len(c.RNG) {
		t.Fatalf("RNG words = %d, want %d", len(got.RNG), len(c.RNG))
	}
	for i := range c.RNG {
		if got.RNG[i] != c.RNG[i] {
			t.Fatalf("RNG[%d] = %#x, want %#x", i, got.RNG[i], c.RNG[i])
		}
	}
	for i := range c.NeighborRef {
		if got.NeighborRef[i] != c.NeighborRef[i] {
			t.Fatalf("NeighborRef[%d] mismatch", i)
		}
	}
}

func TestCheckpointReadsLegacyV1(t *testing.T) {
	// Hand-build a SPCKP1 stream: magic, step, time, seed, n, pos, vel.
	var buf bytes.Buffer
	buf.WriteString("SPCKP1")
	for _, v := range []any{int64(5), float64(2.5), uint64(77), int64(1),
		[3]float64{1, 2, 3}, [3]float64{4, 5, 6}} {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 5 || got.Seed != 77 || len(got.Pos) != 1 || got.Pos[0] != (vec.V{X: 1, Y: 2, Z: 3}) {
		t.Fatalf("legacy checkpoint misread: %+v", got)
	}
	if got.RNG != nil || got.NeighborRef != nil {
		t.Fatal("legacy checkpoint should carry no RNG/ref blocks")
	}
}

func TestCheckpointRejectsInconsistentCounts(t *testing.T) {
	c := &Checkpoint{Pos: make([]vec.V, 3), Vel: make([]vec.V, 3), NeighborRef: make([]vec.V, 2)}
	if err := WriteCheckpoint(io.Discard, c); err == nil {
		t.Fatal("mismatched neighbor ref length accepted by writer")
	}
	// Corrupt a valid stream's nref field so it disagrees with n.
	c.NeighborRef = nil
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Header layout: magic(6) step(8) time(8) seed(8) n(8) nrng(8) nref(8).
	binary.LittleEndian.PutUint64(data[6+8*4:], 2) // nrng = 2 but no RNG block follows
	if _, err := ReadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt RNG count accepted")
	}
	binary.LittleEndian.PutUint64(data[6+8*4:], 0)
	binary.LittleEndian.PutUint64(data[6+8*5:], 1) // nref = 1 != n = 3
	if _, err := ReadCheckpoint(bytes.NewReader(data)); !errors.Is(err, ErrFormat) {
		t.Fatalf("inconsistent nref: err = %v, want ErrFormat", err)
	}
}
