package smd

import (
	"math"
	"testing"

	"spice/internal/forcefield"
	"spice/internal/md"
	"spice/internal/topology"
	"spice/internal/units"
	"spice/internal/vec"
)

// freeBead builds a single mobile bead with no potential except any terms
// the test adds.
func freeBead(t *testing.T, seed uint64, terms ...forcefield.Term) *md.Engine {
	t.Helper()
	top := topology.New()
	top.AddAtom(topology.Atom{Kind: topology.KindDNA, Mass: 325, Radius: 3})
	eng, err := md.New(md.Config{
		Top:   top,
		Init:  []vec.V{{}},
		Terms: terms,
		Seed:  seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestProtocolValidation(t *testing.T) {
	base := Protocol{Kappa: 1, Velocity: 1, Axis: vec.V{Z: 1}, Atoms: []int{0}, Distance: 10}
	bad := []func(p *Protocol){
		func(p *Protocol) { p.Kappa = 0 },
		func(p *Protocol) { p.Velocity = -1 },
		func(p *Protocol) { p.Axis = vec.Zero },
		func(p *Protocol) { p.Atoms = nil },
		func(p *Protocol) { p.Distance = 0 },
	}
	for i, mutate := range bad {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid protocol accepted", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid protocol rejected: %v", err)
	}
}

func TestNewPullerChecksAtoms(t *testing.T) {
	eng := freeBead(t, 1)
	p := Protocol{Kappa: 1, Velocity: 0.01, Axis: vec.V{Z: 1}, Atoms: []int{5}, Distance: 1}
	if _, err := NewPuller(eng, p); err == nil {
		t.Fatal("out-of-range steered atom accepted")
	}
}

func TestPullerStartsRelaxed(t *testing.T) {
	eng := freeBead(t, 2)
	pl, err := NewPuller(eng, Protocol{Kappa: 2, Velocity: 0.01, Axis: vec.V{Z: -1}, Atoms: []int{0}, Distance: 5})
	if err != nil {
		t.Fatal(err)
	}
	f := make([]vec.V, 1)
	e := pl.AddForces(eng.State().Pos, f)
	if e != 0 || f[0].Norm() != 0 {
		t.Fatalf("initial spring not relaxed: e=%v f=%v", e, f[0])
	}
	if pl.Displacement() != 0 || pl.Work() != 0 {
		t.Fatal("initial displacement/work nonzero")
	}
}

func TestSpringForceDirection(t *testing.T) {
	eng := freeBead(t, 3)
	pl, err := NewPuller(eng, Protocol{Kappa: 2, Velocity: 0.01, Axis: vec.V{Z: 1}, Atoms: []int{0}, Distance: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Move λ forward while the bead stays: spring pulls bead along +z.
	pl.lastS = 0
	pl.haveForce = true
	pl.Advance(100) // λ advances by 1 Å
	f := make([]vec.V, 1)
	pl.AddForces([]vec.V{{}}, f)
	if f[0].Z <= 0 {
		t.Fatalf("spring should pull +z, got %v", f[0])
	}
	if pl.SpringForce() <= 0 {
		t.Fatalf("spring force should be positive (forward), got %v", pl.SpringForce())
	}
}

func TestWorkIsPositiveWhenDragging(t *testing.T) {
	eng := freeBead(t, 4)
	p := Protocol{
		Kappa:    units.SpringFromPaper(100),
		Velocity: units.VelocityFromPaper(100),
		Axis:     vec.V{Z: 1},
		Atoms:    []int{0},
		Distance: 5,
	}
	pl, err := Attach(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Run(eng, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("no steps taken")
	}
	// Dragging a bead through friction always costs some work on
	// average; it must at least not be strongly negative.
	if pl.Work() < -0.5 {
		t.Fatalf("work = %v strongly negative for a drag", pl.Work())
	}
	// Scheduled displacement reached.
	if math.Abs(pl.Displacement()-5) > 0.01 {
		t.Fatalf("displacement = %v, want 5", pl.Displacement())
	}
}

func TestRunRecordsMonotoneGrid(t *testing.T) {
	eng := freeBead(t, 5)
	p := Protocol{
		Kappa:       units.SpringFromPaper(100),
		Velocity:    units.VelocityFromPaper(200),
		Axis:        vec.V{Z: -1},
		Atoms:       []int{0},
		Distance:    4,
		SampleEvery: 0.5,
	}
	pl, err := Attach(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Run(eng, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	log := res.Log
	// Expect samples at 0, 0.5, ..., 4.0 → 9 samples.
	if len(log.Samples) != 9 {
		t.Fatalf("samples = %d, want 9", len(log.Samples))
	}
	for i, s := range log.Samples {
		want := 0.5 * float64(i)
		if math.Abs(s.Lambda-want) > 0.05 {
			t.Fatalf("sample %d at λ=%v, want ~%v", i, s.Lambda, want)
		}
		if i > 0 && s.Lambda <= log.Samples[i-1].Lambda {
			t.Fatal("grid not monotone")
		}
	}
	if log.Kappa != p.Kappa || log.Velocity != p.Velocity || log.Seed != 5 {
		t.Fatalf("log header: %+v", log)
	}
}

func TestStiffSpringTracksSchedule(t *testing.T) {
	// With a very stiff spring the COM must track λ closely.
	eng := freeBead(t, 6)
	p := Protocol{
		Kappa:    units.SpringFromPaper(1000),
		Velocity: units.VelocityFromPaper(100),
		Axis:     vec.V{Z: 1},
		Atoms:    []int{0},
		Distance: 6,
	}
	pl, err := Attach(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Run(eng, p, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Log.Samples {
		if math.Abs(s.Z-s.Lambda) > 1.0 {
			t.Fatalf("stiff spring lag: z=%v λ=%v", s.Z, s.Lambda)
		}
	}
}

func TestSoftSpringLagsMore(t *testing.T) {
	lag := func(kappaPN float64) float64 {
		eng := freeBead(t, 7)
		p := Protocol{
			Kappa:    units.SpringFromPaper(kappaPN),
			Velocity: units.VelocityFromPaper(400),
			Axis:     vec.V{Z: 1},
			Atoms:    []int{0},
			Distance: 8,
		}
		pl, err := Attach(eng, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pl.Run(eng, p, 7)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, s := range res.Log.Samples {
			total += math.Abs(s.Lambda - s.Z)
		}
		return total / float64(len(res.Log.Samples))
	}
	soft, stiff := lag(10), lag(1000)
	if soft <= stiff {
		t.Fatalf("soft spring should lag more: soft=%v stiff=%v", soft, stiff)
	}
}

func TestPaperProtocol(t *testing.T) {
	p := PaperProtocol(100, 12.5, []int{0})
	if math.Abs(p.Kappa-units.SpringFromPaper(100)) > 1e-12 {
		t.Fatal("kappa conversion wrong")
	}
	if math.Abs(p.Velocity-0.0125) > 1e-15 {
		t.Fatal("velocity conversion wrong")
	}
	if p.Distance != 10 {
		t.Fatal("paper sub-trajectory is 10 Å")
	}
	if p.Axis.Z != -1 {
		t.Fatal("paper pulls toward the barrel (-z)")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCOMPullingMultiAtom(t *testing.T) {
	// Pull a 2-bead molecule by COM: both beads feel mass-weighted force.
	top := topology.New()
	top.AddAtom(topology.Atom{Mass: 100, Radius: 1})
	top.AddAtom(topology.Atom{Mass: 300, Radius: 1})
	eng, err := md.New(md.Config{Top: top, Init: []vec.V{{}, {X: 3}}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := Protocol{Kappa: 5, Velocity: 0.05, Axis: vec.V{Z: 1}, Atoms: []int{0, 1}, Distance: 2}
	pl, err := NewPuller(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	// Advance λ by 1 Å with the COM pinned at z=0.
	pl.lastS = 0
	pl.haveForce = true
	pl.Advance(20)
	f := make([]vec.V, 2)
	pl.AddForces([]vec.V{{}, {X: 3}}, f)
	// F_total = κ·(λ-s) = 5; split 1:3 by mass.
	if math.Abs(f[0].Z-5.0/4) > 1e-9 || math.Abs(f[1].Z-15.0/4) > 1e-9 {
		t.Fatalf("mass-weighted split wrong: %v %v", f[0].Z, f[1].Z)
	}
}

// buildPullSystem constructs the small translocation system the resume
// tests pull on, mirroring the campaign execution path (build + equilibrate
// + attach).
func buildPullSystem(t *testing.T, seed uint64) (*md.Engine, []int) {
	t.Helper()
	spec := md.DefaultTranslocation(3)
	spec.Seed = seed
	spec.DT = 0.02
	spec.Workers = 1
	ts, err := md.BuildTranslocation(spec)
	if err != nil {
		t.Fatal(err)
	}
	ts.Engine.Run(100)
	return ts.Engine, ts.DNA[:1]
}

func runPull(t *testing.T, seed uint64, opts RunOpts) (*Result, error) {
	t.Helper()
	eng, atoms := buildPullSystem(t, seed)
	p := PaperProtocol(100, 400, atoms)
	p.Distance = 3
	pl, err := Attach(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	return pl.RunWithOpts(eng, p, seed, opts)
}

// TestRunWithOptsMatchesRun pins that checkpointing is observation-only:
// a run that takes checkpoints at every sample produces the identical log.
func TestRunWithOptsMatchesRun(t *testing.T) {
	plain, err := runPull(t, 21, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	nCkpts := 0
	ckpted, err := runPull(t, 21, RunOpts{OnCheckpoint: func(*PullCheckpoint) error { nCkpts++; return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if nCkpts < 4 {
		t.Fatalf("only %d checkpoints taken", nCkpts)
	}
	if len(plain.Log.Samples) != len(ckpted.Log.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(plain.Log.Samples), len(ckpted.Log.Samples))
	}
	for i := range plain.Log.Samples {
		if plain.Log.Samples[i] != ckpted.Log.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, plain.Log.Samples[i], ckpted.Log.Samples[i])
		}
	}
}

// errAbort simulates a worker death mid-pull.
type abortErr struct{}

func (abortErr) Error() string { return "aborted" }

// TestResumeBitExact is the core property the dist runtime relies on: a
// pull killed mid-flight and resumed from its checkpoint on a fresh engine
// yields the bit-identical work log of an uninterrupted pull.
func TestResumeBitExact(t *testing.T) {
	const seed = 33
	full, err := runPull(t, seed, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: capture the checkpoint after the 3rd sample, then die.
	var saved *PullCheckpoint
	n := 0
	_, err = runPull(t, seed, RunOpts{OnCheckpoint: func(ck *PullCheckpoint) error {
		if n++; n == 3 {
			saved = ck
			return abortErr{}
		}
		return nil
	}})
	if _, ok := err.(abortErr); !ok {
		t.Fatalf("expected abort, got %v", err)
	}
	if saved == nil || len(saved.Samples) == 0 {
		t.Fatal("no checkpoint captured")
	}
	if len(saved.Samples) >= len(full.Log.Samples) {
		t.Fatalf("checkpoint is not mid-pull: %d of %d samples", len(saved.Samples), len(full.Log.Samples))
	}

	// Resume on a fresh engine — the "another worker" of the dist story.
	resumed, err := runPull(t, seed, RunOpts{Resume: saved})
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Log.Samples) != len(full.Log.Samples) {
		t.Fatalf("resumed log has %d samples, want %d", len(resumed.Log.Samples), len(full.Log.Samples))
	}
	for i := range full.Log.Samples {
		if full.Log.Samples[i] != resumed.Log.Samples[i] {
			t.Fatalf("sample %d differs after resume: %+v vs %+v", i, resumed.Log.Samples[i], full.Log.Samples[i])
		}
	}
	if full.Steps != resumed.Steps || full.FinalS != resumed.FinalS {
		t.Fatalf("result metadata differs: steps %d vs %d, finalS %v vs %v",
			resumed.Steps, full.Steps, resumed.FinalS, full.FinalS)
	}
}

func TestResumeRejectsMalformedCheckpoint(t *testing.T) {
	if _, err := runPull(t, 5, RunOpts{Resume: &PullCheckpoint{}}); err == nil {
		t.Fatal("empty checkpoint accepted")
	}
}
