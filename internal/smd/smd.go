// Package smd implements Steered Molecular Dynamics: a fictitious pulling
// atom moves at constant velocity v along a pulling axis and drags the
// center of mass of the steered atoms behind it through a harmonic spring
// of stiffness κ — the non-equilibrium protocol whose work values feed
// Jarzynski's equality (package jarzynski).
//
// The two protocol parameters are exactly the ones the paper's Fig. 4
// optimizes: the spring constant κ (how strongly the SMD atoms are coupled
// to the pulling atom) and the pulling velocity v (how fast the reaction
// coordinate is traversed).
package smd

import (
	"fmt"
	"math"

	"spice/internal/md"
	"spice/internal/trace"
	"spice/internal/units"
	"spice/internal/vec"
)

// Protocol defines one constant-velocity pull.
type Protocol struct {
	// Kappa is the spring constant in kcal/mol/Å². Use
	// units.SpringFromPaper to convert from the paper's pN/Å.
	Kappa float64
	// Velocity is the pulling speed in Å/ps (units.VelocityFromPaper
	// converts from Å/ns). Positive pulls along Axis.
	Velocity float64
	// Axis is the pulling direction; it is normalized internally.
	Axis vec.V
	// Atoms are the steered atoms; the spring couples to their COM.
	// The paper steers the C3' atom of the leading nucleotide, i.e. a
	// single-atom selection.
	Atoms []int
	// Distance is the total pull length in Å (the paper uses 10 Å
	// sub-trajectories).
	Distance float64
	// SampleEvery sets the reaction-coordinate sampling interval in Å
	// for the recorded work profile (default 0.25).
	SampleEvery float64
}

// Validate reports configuration errors.
func (p *Protocol) Validate() error {
	if p.Kappa <= 0 {
		return fmt.Errorf("smd: spring constant must be positive, got %g", p.Kappa)
	}
	if p.Velocity <= 0 {
		return fmt.Errorf("smd: pulling velocity must be positive, got %g", p.Velocity)
	}
	if p.Axis.Norm() == 0 {
		return fmt.Errorf("smd: zero pulling axis")
	}
	if len(p.Atoms) == 0 {
		return fmt.Errorf("smd: no steered atoms")
	}
	if p.Distance <= 0 {
		return fmt.Errorf("smd: pull distance must be positive, got %g", p.Distance)
	}
	return nil
}

// Puller is the live spring: a forcefield.Term added to the engine plus
// the work integrator. Advance the schedule with Advance(dt) once per MD
// step (Run does this for you).
type Puller struct {
	kappa  float64
	vel    float64
	axis   vec.V
	atoms  []int
	masses []float64
	mtot   float64

	lambda  float64 // current pulling-atom coordinate along axis
	lambda0 float64
	work    float64 // accumulated external work, kcal/mol

	// lastS caches the COM projection from the latest force evaluation
	// so Advance can integrate the work without recomputing the COM.
	lastS     float64
	haveForce bool
}

// NewPuller attaches a puller to the engine's current state: λ starts at
// the present COM projection so the spring is initially relaxed.
func NewPuller(eng *md.Engine, p Protocol) (*Puller, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	st := eng.State()
	for _, a := range p.Atoms {
		if a < 0 || a >= len(st.Pos) {
			return nil, fmt.Errorf("smd: steered atom %d out of range", a)
		}
	}
	pl := &Puller{
		kappa: p.Kappa,
		vel:   p.Velocity,
		axis:  p.Axis.Unit(),
		atoms: append([]int(nil), p.Atoms...),
	}
	for _, a := range pl.atoms {
		m := st.Mass[a]
		pl.masses = append(pl.masses, m)
		pl.mtot += m
	}
	if pl.mtot <= 0 {
		return nil, fmt.Errorf("smd: steered atoms have zero total mass")
	}
	pl.lambda = pl.project(st.Pos)
	pl.lambda0 = pl.lambda
	return pl, nil
}

// project returns the COM coordinate of the steered atoms along the axis.
func (pl *Puller) project(pos []vec.V) float64 {
	s := 0.0
	for k, a := range pl.atoms {
		s += pl.masses[k] * pos[a].Dot(pl.axis)
	}
	return s / pl.mtot
}

// Name implements forcefield.Term.
func (pl *Puller) Name() string { return "smd-spring" }

// AddForces implements forcefield.Term: E = κ/2·(s-λ)², with the restoring
// force mass-weighted over the steered atoms (standard COM pulling).
func (pl *Puller) AddForces(pos []vec.V, f []vec.V) float64 {
	s := pl.project(pos)
	pl.lastS = s
	pl.haveForce = true
	d := s - pl.lambda
	e := 0.5 * pl.kappa * d * d
	for k, a := range pl.atoms {
		g := -pl.kappa * d * pl.masses[k] / pl.mtot
		f[a].AddScaled(g, pl.axis)
	}
	return e
}

// Advance moves the pulling atom by v·dt and accumulates the external
// work dW = (∂E/∂λ)·dλ = -κ·(s-λ)·v·dt, evaluated with the pre-move λ
// (left-point rule; the sampling interval is far below all other scales).
func (pl *Puller) Advance(dt float64) {
	s := pl.lastS
	dlambda := pl.vel * dt
	pl.work += -pl.kappa * (s - pl.lambda) * dlambda
	pl.lambda += dlambda
}

// Displacement returns λ - λ0, the scheduled COM displacement in Å.
func (pl *Puller) Displacement() float64 { return pl.lambda - pl.lambda0 }

// DisplacementOfCOM returns the actual COM displacement s - λ0 from the
// latest force evaluation (lags Displacement by the spring extension).
func (pl *Puller) DisplacementOfCOM() float64 { return pl.lastS - pl.lambda0 }

// SetLambda positions the pulling atom at displacement d (relative to the
// attach point λ0) without accumulating work — used by the static-window
// restraints of thermodynamic integration (package ti).
func (pl *Puller) SetLambda(d float64) { pl.lambda = pl.lambda0 + d }

// Work returns the accumulated external work in kcal/mol.
func (pl *Puller) Work() float64 { return pl.work }

// SpringForce returns the instantaneous spring force magnitude on the COM
// in kcal/mol/Å (positive = pulling forward); units.PNFromKcalMolA
// converts to the pN readout a haptic device would render.
func (pl *Puller) SpringForce() float64 {
	if !pl.haveForce {
		return 0
	}
	return pl.kappa * (pl.lambda - pl.lastS)
}

// Result is the outcome of one completed pull.
type Result struct {
	Log      *trace.WorkLog
	Steps    int
	FinalS   float64 // final COM projection, Å
	WallFail bool    // reserved for the steering layer: run aborted
}

// PullerState is the resumable snapshot of a Puller's internal state. The
// JSON tags define the dist wire encoding; Go's JSON float formatting
// round-trips float64 exactly, so shipping one preserves bit-exactness.
type PullerState struct {
	Lambda    float64 `json:"lambda"`
	Lambda0   float64 `json:"lambda0"`
	Work      float64 `json:"work"`
	LastS     float64 `json:"lastS"`
	HaveForce bool    `json:"haveForce"`
}

// Snapshot captures the puller's state for a PullCheckpoint.
func (pl *Puller) Snapshot() PullerState {
	return PullerState{Lambda: pl.lambda, Lambda0: pl.lambda0, Work: pl.work, LastS: pl.lastS, HaveForce: pl.haveForce}
}

// RestoreState loads a snapshot, overwriting the attach-time state.
func (pl *Puller) RestoreState(st PullerState) {
	pl.lambda, pl.lambda0, pl.work = st.Lambda, st.Lambda0, st.Work
	pl.lastS, pl.haveForce = st.LastS, st.HaveForce
}

// PullCheckpoint freezes a pull in flight: the engine's dynamical state
// (RNG streams and neighbor-list reference included), the spring's
// schedule position and accumulated work, and the samples recorded so
// far. Restoring one on any machine and continuing reproduces the
// uninterrupted pull bit-exactly.
type PullCheckpoint struct {
	Engine  *trace.Checkpoint
	Puller  PullerState
	Samples []trace.WorkSample
	Steps   int
	Next    int // next sample-grid index
}

// RunOpts controls checkpointing and resumption of a pull.
type RunOpts struct {
	// Resume continues a pull from a checkpoint instead of starting at
	// the attach point. The engine must have been built from the same
	// system spec and seed as the original.
	Resume *PullCheckpoint
	// CheckpointEvery is the number of recorded samples between
	// OnCheckpoint calls (<= 0 means every sample).
	CheckpointEvery int
	// OnCheckpoint receives each checkpoint; returning an error aborts
	// the pull (used by dist workers when the coordinator is gone).
	OnCheckpoint func(*PullCheckpoint) error
}

// Run executes a complete pull of p.Distance on eng, recording the work
// profile every SampleEvery Å of scheduled displacement. It returns the
// work log ready for jarzynski analysis.
//
// The engine must already contain the puller as a term — use Attach for
// the common case.
func (pl *Puller) Run(eng *md.Engine, p Protocol, seed uint64) (*Result, error) {
	return pl.RunWithOpts(eng, p, seed, RunOpts{})
}

// Drive is an in-flight pull whose MD stepping is owned by the caller.
// RunWithOpts drives a solo engine through it; the ensemble executor in
// package campaign interleaves many Drives through one md.Batch, calling
// AfterStep for each replica behind every batch step. Both paths execute
// the identical per-step bookkeeping, so a batched pull records the exact
// samples and checkpoints a solo pull does.
//
// Protocol: StartDrive, then `for d.Active() { step the engine; d.AfterStep() }`,
// then Finish.
type Drive struct {
	pl   *Puller
	eng  *md.Engine
	p    Protocol
	opts RunOpts

	dt         float64
	sample     float64
	totalSteps int
	nSamples   int
	log        *trace.WorkLog
	next       int // next sample-grid index
	steps      int
	sinceCkpt  int
	every      int
}

// StartDrive validates the pull, applies any resume checkpoint, records
// the initial sample and returns the ready-to-step Drive.
func (pl *Puller) StartDrive(eng *md.Engine, p Protocol, seed uint64, opts RunOpts) (*Drive, error) {
	sample := p.SampleEvery
	if sample <= 0 {
		sample = 0.25
	}
	dt := eng.Timestep()
	if dt <= 0 {
		return nil, fmt.Errorf("smd: engine timestep %g", dt)
	}
	every := opts.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	d := &Drive{
		pl:         pl,
		eng:        eng,
		p:          p,
		opts:       opts,
		dt:         dt,
		sample:     sample,
		totalSteps: int(math.Ceil(p.Distance / (pl.vel * dt))),
		// The sample grid is indexed by integer k so every replica of a
		// protocol records the exact same Lambda values regardless of
		// floating-point drift in the λ accumulation.
		nSamples: int(math.Floor(p.Distance/sample + 1e-9)),
		log:      &trace.WorkLog{Kappa: pl.kappa, Velocity: pl.vel, Seed: seed},
		next:     1,
		every:    every,
	}
	if r := opts.Resume; r != nil {
		if r.Engine == nil || len(r.Samples) == 0 || r.Next < 1 {
			return nil, fmt.Errorf("smd: malformed pull checkpoint")
		}
		if err := eng.Restore(r.Engine); err != nil {
			return nil, fmt.Errorf("smd: resuming pull: %w", err)
		}
		pl.RestoreState(r.Puller)
		d.log.Samples = append(d.log.Samples, r.Samples...)
		d.steps, d.next = r.Steps, r.Next
	} else {
		d.record(0)
	}
	return d, nil
}

func (d *Drive) gridAt(k int) float64 {
	g := float64(k) * d.sample
	if g > d.p.Distance {
		g = d.p.Distance
	}
	return g
}

func (d *Drive) record(lambda float64) {
	st := d.eng.State()
	d.log.Samples = append(d.log.Samples, trace.WorkSample{
		Lambda: lambda,
		Z:      d.pl.project(st.Pos) - d.pl.lambda0,
		Work:   d.pl.work,
	})
}

// Active reports whether the pull still needs MD steps.
func (d *Drive) Active() bool {
	return d.pl.Displacement() < d.p.Distance-1e-9 && d.steps < d.totalSteps+1
}

// AfterStep performs the per-step pull bookkeeping — spring advance,
// sample recording, checkpoint emission — and must be called exactly once
// after each engine step taken while Active. A non-nil error aborts the
// pull (it is the OnCheckpoint callback's error, unwrapped).
func (d *Drive) AfterStep() error {
	d.pl.Advance(d.dt)
	d.steps++
	recorded := false
	for d.next <= d.nSamples && d.pl.Displacement() >= d.gridAt(d.next)-1e-9 {
		d.record(d.gridAt(d.next))
		d.next++
		recorded = true
	}
	if recorded && d.opts.OnCheckpoint != nil {
		if d.sinceCkpt++; d.sinceCkpt >= d.every {
			d.sinceCkpt = 0
			ck := &PullCheckpoint{
				Engine:  d.eng.Checkpoint(),
				Puller:  d.pl.Snapshot(),
				Samples: append([]trace.WorkSample(nil), d.log.Samples...),
				Steps:   d.steps,
				Next:    d.next,
			}
			if err := d.opts.OnCheckpoint(ck); err != nil {
				return err
			}
		}
	}
	return nil
}

// Finish records the guaranteed terminal sample and returns the Result.
// Call once, after Active has gone false.
func (d *Drive) Finish() (*Result, error) {
	// Guarantee the terminal sample at Distance even if FP drift left the
	// last grid point unreached.
	if last := d.log.Samples[len(d.log.Samples)-1].Lambda; last < d.p.Distance-1e-9 {
		d.record(d.p.Distance)
	}
	st := d.eng.State()
	return &Result{Log: d.log, Steps: d.steps, FinalS: d.pl.project(st.Pos)}, nil
}

// RunWithOpts is Run with periodic checkpoints and optional resumption.
// The checkpointed run takes the exact same dynamical path as a plain Run:
// checkpoints are pure snapshots between steps and consume no randomness.
func (pl *Puller) RunWithOpts(eng *md.Engine, p Protocol, seed uint64, opts RunOpts) (*Result, error) {
	d, err := pl.StartDrive(eng, p, seed, opts)
	if err != nil {
		return nil, err
	}
	for d.Active() {
		eng.Step()
		if err := d.AfterStep(); err != nil {
			return nil, err
		}
	}
	return d.Finish()
}

// Attach creates a puller, registers it with the engine and returns it.
func Attach(eng *md.Engine, p Protocol) (*Puller, error) {
	pl, err := NewPuller(eng, p)
	if err != nil {
		return nil, err
	}
	eng.AddTerm(pl)
	return pl, nil
}

// PaperProtocol builds a Protocol from the paper's parameter conventions:
// κ in pN/Å and v in Å/ns, pulling the given atoms along -z (vestibule
// mouth toward the barrel, the translocation direction of Fig. 3) over a
// 10 Å sub-trajectory.
func PaperProtocol(kappaPN, vAns float64, atoms []int) Protocol {
	return Protocol{
		Kappa:    units.SpringFromPaper(kappaPN),
		Velocity: units.VelocityFromPaper(vAns),
		Axis:     vec.V{Z: -1},
		Atoms:    atoms,
		Distance: 10,
	}
}
