// Package umbrella implements umbrella sampling with WHAM reconstruction —
// the third free-energy route on the SPICE infrastructure, alongside
// SMD-JE (package jarzynski) and thermodynamic integration (package ti).
// Like those, its windows are independent grid jobs; the paper's framing
// ("the grid computing infrastructure used here ... can be easily extended
// to compute free energies using different approaches", §VI) is exactly
// the property this package demonstrates.
//
// Each window restrains the reaction coordinate with a harmonic bias at a
// fixed center and histograms the coordinate; the Weighted Histogram
// Analysis Method (WHAM) self-consistently removes the biases and merges
// the windows into one unbiased PMF.
package umbrella

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"spice/internal/md"
	"spice/internal/smd"
	"spice/internal/units"
	"spice/internal/vec"
	"spice/internal/xrand"
)

// Config drives one umbrella-sampling calculation.
type Config struct {
	// Build constructs a fresh simulation per window.
	Build func(window int, seed uint64) (*md.Engine, []int, error)
	// Kappa is the bias spring constant, kcal/mol/Å². Softer than TI
	// restraints: windows must overlap for WHAM to connect them.
	Kappa float64
	// Axis is the reaction coordinate.
	Axis vec.V
	// Start/Distance/Windows place the bias centers (inclusive ends).
	Start    float64
	Distance float64
	Windows  int
	// EquilSteps discards initial relaxation; SampleSteps are recorded
	// every SampleEvery steps.
	EquilSteps  int
	SampleSteps int
	SampleEvery int
	// Temp is the simulation temperature, K (default 300).
	Temp    float64
	Workers int
	Seed    uint64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Build == nil:
		return errors.New("umbrella: nil Build")
	case c.Kappa <= 0:
		return fmt.Errorf("umbrella: spring constant %g", c.Kappa)
	case c.Axis.Norm() == 0:
		return errors.New("umbrella: zero axis")
	case c.Windows < 2:
		return fmt.Errorf("umbrella: need >= 2 windows, got %d", c.Windows)
	case c.Distance == 0:
		return errors.New("umbrella: zero distance")
	case c.SampleSteps <= 0:
		return errors.New("umbrella: no sampling steps")
	}
	return nil
}

// WindowData is the raw outcome of one biased window.
type WindowData struct {
	Center  float64   // bias center (displacement, Å)
	Kappa   float64   // bias spring, kcal/mol/Å²
	Samples []float64 // observed reaction-coordinate values
}

// Sample runs all windows and returns their coordinate samples.
func Sample(cfg Config) ([]WindowData, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 10
	}
	root := xrand.New(cfg.Seed)
	seeds := make([]uint64, cfg.Windows)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}
	out := make([]WindowData, cfg.Windows)
	errs := make([]error, cfg.Windows)
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Windows; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[w], errs[w] = sampleWindow(cfg, w, seeds[w])
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("umbrella: window %d: %w", w, err)
		}
	}
	return out, nil
}

func sampleWindow(cfg Config, w int, seed uint64) (WindowData, error) {
	eng, atoms, err := cfg.Build(w, seed)
	if err != nil {
		return WindowData{}, err
	}
	center := cfg.Start + cfg.Distance*float64(w)/float64(cfg.Windows-1)
	proto := smd.Protocol{
		Kappa:    cfg.Kappa,
		Velocity: 1, // static bias: λ set once, never advanced
		Axis:     cfg.Axis,
		Atoms:    atoms,
		Distance: 1,
	}
	pl, err := smd.NewPuller(eng, proto)
	if err != nil {
		return WindowData{}, err
	}
	eng.AddTerm(pl)
	pl.SetLambda(center)

	for s := 0; s < cfg.EquilSteps; s++ {
		eng.Step()
	}
	wd := WindowData{Center: center, Kappa: cfg.Kappa}
	for s := 0; s < cfg.SampleSteps; s++ {
		eng.Step()
		if s%cfg.SampleEvery == 0 {
			wd.Samples = append(wd.Samples, pl.DisplacementOfCOM())
		}
	}
	if len(wd.Samples) == 0 {
		return WindowData{}, errors.New("no samples collected")
	}
	return wd, nil
}

// WHAMResult is the merged unbiased profile.
type WHAMResult struct {
	Grid []float64 // bin centers, Å
	PMF  []float64 // kcal/mol, anchored at the first populated bin
	// F holds the converged per-window free-energy shifts.
	F []float64
	// Iterations until convergence.
	Iterations int
}

// WHAM merges the biased windows into an unbiased PMF over nbins uniform
// bins spanning [lo, hi). tol is the convergence threshold on the window
// shifts (kcal/mol); maxIter bounds the self-consistency loop.
func WHAM(windows []WindowData, temp, lo, hi float64, nbins int, tol float64, maxIter int) (*WHAMResult, error) {
	if len(windows) < 2 {
		return nil, errors.New("umbrella: WHAM needs >= 2 windows")
	}
	if nbins < 2 || hi <= lo {
		return nil, fmt.Errorf("umbrella: bad bin spec [%g,%g) x %d", lo, hi, nbins)
	}
	if temp <= 0 {
		temp = 300
	}
	beta := units.Beta(temp)
	width := (hi - lo) / float64(nbins)
	centers := make([]float64, nbins)
	for b := range centers {
		centers[b] = lo + (float64(b)+0.5)*width
	}

	// Histogram each window; count totals.
	counts := make([][]float64, len(windows))
	totals := make([]float64, len(windows))
	for k, w := range windows {
		counts[k] = make([]float64, nbins)
		for _, s := range w.Samples {
			if s < lo || s >= hi {
				continue
			}
			b := int((s - lo) / width)
			if b >= nbins {
				b = nbins - 1
			}
			counts[k][b]++
			totals[k]++
		}
		if totals[k] == 0 {
			return nil, fmt.Errorf("umbrella: window %d (center %g) has no in-range samples", k, w.Center)
		}
	}

	// Bias energies per window per bin.
	bias := make([][]float64, len(windows))
	for k, w := range windows {
		bias[k] = make([]float64, nbins)
		for b, x := range centers {
			d := x - w.Center
			bias[k][b] = 0.5 * w.Kappa * d * d
		}
	}

	// Self-consistent iteration on the window shifts f_k.
	f := make([]float64, len(windows))
	p := make([]float64, nbins)
	res := &WHAMResult{Grid: centers}
	for iter := 1; iter <= maxIter; iter++ {
		// Unbiased probability per bin.
		for b := range p {
			num := 0.0
			den := 0.0
			for k := range windows {
				num += counts[k][b]
				den += totals[k] * math.Exp(-beta*(bias[k][b]-f[k]))
			}
			if den > 0 {
				p[b] = num / den
			} else {
				p[b] = 0
			}
		}
		// New shifts.
		maxShift := 0.0
		for k := range windows {
			z := 0.0
			for b := range p {
				z += p[b] * math.Exp(-beta*bias[k][b])
			}
			var fk float64
			if z > 0 {
				fk = -math.Log(z) / beta
			}
			if d := math.Abs(fk - f[k]); d > maxShift {
				maxShift = d
			}
			f[k] = fk
		}
		res.Iterations = iter
		if maxShift < tol {
			break
		}
	}

	// PMF from the converged distribution.
	res.PMF = make([]float64, nbins)
	anchor := math.NaN()
	for b := range p {
		if p[b] > 0 {
			res.PMF[b] = -math.Log(p[b]) / beta
			if math.IsNaN(anchor) {
				anchor = res.PMF[b]
			}
		} else {
			res.PMF[b] = math.Inf(1) // unsampled bin
		}
	}
	if math.IsNaN(anchor) {
		return nil, errors.New("umbrella: no populated bins")
	}
	for b := range res.PMF {
		if !math.IsInf(res.PMF[b], 1) {
			res.PMF[b] -= anchor
		}
	}
	res.F = f
	return res, nil
}

// Run is the convenience pipeline: Sample then WHAM over the sampled
// range with nbins bins.
func Run(cfg Config, nbins int) (*WHAMResult, error) {
	windows, err := Sample(cfg)
	if err != nil {
		return nil, err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, w := range windows {
		for _, s := range w.Samples {
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
		}
	}
	span := hi - lo
	if span <= 0 {
		return nil, errors.New("umbrella: degenerate sample range")
	}
	return WHAM(windows, cfg.Temp, lo, hi+1e-9*span, nbins, 1e-6, 10000)
}
