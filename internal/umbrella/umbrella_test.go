package umbrella

import (
	"math"
	"testing"

	"spice/internal/forcefield"
	"spice/internal/md"
	"spice/internal/topology"
	"spice/internal/units"
	"spice/internal/vec"
	"spice/internal/xrand"
)

func wellBuild(z0, depth, width float64) func(int, uint64) (*md.Engine, []int, error) {
	return func(_ int, seed uint64) (*md.Engine, []int, error) {
		top := topology.New()
		top.AddAtom(topology.Atom{Kind: topology.KindDNA, Mass: 325, Radius: 3})
		well := &forcefield.BindingSites{
			Sites: []forcefield.BindingSite{{Z: z0, Depth: depth, Width: width}},
			Atoms: []int{0},
		}
		eng, err := md.New(md.Config{
			Top:   top,
			Init:  []vec.V{{}},
			Terms: []forcefield.Term{well},
			Seed:  seed,
			DT:    0.02,
		})
		return eng, []int{0}, err
	}
}

func baseConfig() Config {
	return Config{
		Build:       wellBuild(5, 1.5, 1.5),
		Kappa:       units.SpringFromPaper(50), // soft bias: overlapping windows
		Axis:        vec.V{Z: 1},
		Start:       0,
		Distance:    10,
		Windows:     11,
		EquilSteps:  2000,
		SampleSteps: 20000,
		SampleEvery: 5,
		Temp:        300,
		Workers:     4,
		Seed:        17,
	}
}

func TestValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Build = nil },
		func(c *Config) { c.Kappa = 0 },
		func(c *Config) { c.Axis = vec.Zero },
		func(c *Config) { c.Windows = 1 },
		func(c *Config) { c.Distance = 0 },
		func(c *Config) { c.SampleSteps = 0 },
	}
	for i, m := range mutations {
		c := baseConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSampleWindowsCoverRange(t *testing.T) {
	cfg := baseConfig()
	cfg.Windows = 5
	cfg.EquilSteps = 500
	cfg.SampleSteps = 2000
	windows, err := Sample(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 5 {
		t.Fatalf("windows = %d", len(windows))
	}
	for i, w := range windows {
		wantCenter := 10 * float64(i) / 4
		if math.Abs(w.Center-wantCenter) > 1e-9 {
			t.Fatalf("window %d center %v, want %v", i, w.Center, wantCenter)
		}
		if len(w.Samples) == 0 {
			t.Fatalf("window %d empty", i)
		}
		// Samples cluster near the bias center (soft bias: generous).
		m := 0.0
		for _, s := range w.Samples {
			m += s
		}
		m /= float64(len(w.Samples))
		if math.Abs(m-w.Center) > 3.5 {
			t.Fatalf("window %d mean %v far from center %v", i, m, w.Center)
		}
	}
}

func TestWHAMValidation(t *testing.T) {
	if _, err := WHAM(nil, 300, 0, 1, 10, 1e-6, 100); err == nil {
		t.Fatal("empty windows accepted")
	}
	w := []WindowData{{Center: 0, Kappa: 1, Samples: []float64{0.5}}, {Center: 1, Kappa: 1, Samples: []float64{1.2}}}
	if _, err := WHAM(w, 300, 1, 0, 10, 1e-6, 100); err == nil {
		t.Fatal("bad bin spec accepted")
	}
	// A window with no in-range samples.
	w2 := []WindowData{{Center: 0, Kappa: 1, Samples: []float64{0.5}}, {Center: 1, Kappa: 1, Samples: []float64{99}}}
	if _, err := WHAM(w2, 300, 0, 2, 10, 1e-6, 100); err == nil {
		t.Fatal("out-of-range window accepted")
	}
}

func TestWHAMRecoversFlatProfile(t *testing.T) {
	// Synthetic: samples drawn from the bias distributions alone (no
	// underlying landscape) must yield a flat PMF.
	rng := xrand.New(3)
	beta := units.Beta(300)
	kappa := 2.0
	sd := math.Sqrt(1 / (beta * kappa))
	var windows []WindowData
	for c := 0.0; c <= 4; c += 1 {
		w := WindowData{Center: c, Kappa: kappa}
		for i := 0; i < 20000; i++ {
			w.Samples = append(w.Samples, c+sd*rng.NormFloat64())
		}
		windows = append(windows, w)
	}
	res, err := WHAM(windows, 300, -1, 5, 30, 1e-8, 20000)
	if err != nil {
		t.Fatal(err)
	}
	// Interior bins (well-sampled) should be flat within noise.
	for b, x := range res.Grid {
		if x < 0 || x > 4 {
			continue
		}
		if math.IsInf(res.PMF[b], 1) {
			t.Fatalf("unsampled interior bin at %v", x)
		}
		if math.Abs(res.PMF[b]) > 0.15 {
			t.Fatalf("flat landscape PMF at %v = %v", x, res.PMF[b])
		}
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestWHAMRecoversHarmonicLandscape(t *testing.T) {
	// Synthetic: true landscape U(x) = a·x² with bias κ/2 (x-c)²; the
	// window distributions are Gaussians with known mean/variance.
	rng := xrand.New(4)
	beta := units.Beta(300)
	a := 0.5
	kappa := 3.0
	var windows []WindowData
	for c := -2.0; c <= 2; c += 0.5 {
		// Combined potential: (a + κ/2)x² - κcx + const →
		// mean = κc/(2a+κ), var = 1/(β(2a+κ)).
		mean := kappa * c / (2*a + kappa)
		sd := math.Sqrt(1 / (beta * (2*a + kappa)))
		w := WindowData{Center: c, Kappa: kappa}
		for i := 0; i < 30000; i++ {
			w.Samples = append(w.Samples, mean+sd*rng.NormFloat64())
		}
		windows = append(windows, w)
	}
	res, err := WHAM(windows, 300, -2, 2, 40, 1e-8, 20000)
	if err != nil {
		t.Fatal(err)
	}
	// Compare to a·x² (both anchored to their minimum).
	minPMF, minTruth := math.Inf(1), math.Inf(1)
	for b, x := range res.Grid {
		if math.IsInf(res.PMF[b], 1) {
			continue
		}
		minPMF = math.Min(minPMF, res.PMF[b])
		minTruth = math.Min(minTruth, a*x*x)
	}
	for b, x := range res.Grid {
		if math.IsInf(res.PMF[b], 1) || math.Abs(x) > 1.5 {
			continue
		}
		got := res.PMF[b] - minPMF
		want := a*x*x - minTruth
		if math.Abs(got-want) > 0.2 {
			t.Fatalf("PMF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestRunRecoversGaussianWell(t *testing.T) {
	if testing.Short() {
		t.Skip("physics integration test")
	}
	cfg := baseConfig()
	res, err := Run(cfg, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the well.
	minV, minAt := math.Inf(1), 0.0
	for b, x := range res.Grid {
		if !math.IsInf(res.PMF[b], 1) && res.PMF[b] < minV {
			minV, minAt = res.PMF[b], x
		}
	}
	if math.Abs(minAt-5) > 1.2 {
		t.Fatalf("well found at %v, want ~5", minAt)
	}
	// Depth relative to the window edges.
	edge := 0.0
	for b, x := range res.Grid {
		if !math.IsInf(res.PMF[b], 1) && x < 1.0 {
			edge = res.PMF[b]
		}
	}
	depth := edge - minV
	if depth < 0.8 || depth > 2.2 {
		t.Fatalf("well depth %v, want ~1.5", depth)
	}
}

func TestSampleDeterministicAcrossWorkers(t *testing.T) {
	cfg := baseConfig()
	cfg.Windows = 3
	cfg.EquilSteps = 100
	cfg.SampleSteps = 300
	run := func(workers int) []float64 {
		c := cfg
		c.Workers = workers
		ws, err := Sample(c)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, w := range ws {
			out = append(out, w.Samples[len(w.Samples)-1])
		}
		return out
	}
	a, b := run(1), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("umbrella sampling depends on worker count")
		}
	}
}
