package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	s := New(0)
	// Must not be stuck at zero.
	var or uint64
	for i := 0; i < 10; i++ {
		or |= s.Uint64()
	}
	if or == 0 {
		t.Fatal("zero-seeded generator emits only zeros")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	counts := make([]int, 7)
	const n = 140000
	for i := 0; i < n; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-1.0/7) > 0.01 {
			t.Fatalf("Intn bias: bucket %d has fraction %v", i, frac)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(9)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := s.NormFloat64()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := s.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential deviate %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean = %v", mean)
	}
}

func TestGammaMean(t *testing.T) {
	s := New(17)
	for _, k := range []float64{0.5, 1, 2.5, 8} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			x := s.Gamma(k)
			if x < 0 {
				t.Fatalf("negative gamma deviate")
			}
			sum += x
		}
		mean := sum / n
		if math.Abs(mean-k)/k > 0.05 {
			t.Fatalf("Gamma(%v) mean = %v", k, mean)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(19)
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.LogNormal(1.0, 0.5)
	}
	// Median of lognormal is exp(mu).
	count := 0
	for _, x := range xs {
		if x < math.E {
			count++
		}
	}
	frac := float64(count) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("lognormal median fraction = %v", frac)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	// Parent and child streams must differ from each other.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent/child emitted %d identical values", same)
	}
}

func TestSplitNDeterministic(t *testing.T) {
	a := New(31).SplitN(4)
	b := New(31).SplitN(4)
	for i := range a {
		for j := 0; j < 100; j++ {
			if a[i].Uint64() != b[i].Uint64() {
				t.Fatalf("SplitN stream %d not reproducible", i)
			}
		}
	}
}

func TestSplitNStreamsDiffer(t *testing.T) {
	ss := New(37).SplitN(8)
	vals := make(map[uint64]int)
	for i, s := range ss {
		v := s.Uint64()
		if prev, dup := vals[v]; dup {
			t.Fatalf("streams %d and %d share first value", prev, i)
		}
		vals[v] = i
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.NormFloat64()
	}
	_ = sink
}

func TestSnapshotRestoreBitExact(t *testing.T) {
	s := New(42)
	// Leave a spare Gaussian cached so the snapshot covers it.
	s.NormFloat64()
	snap := s.Snapshot()
	var want []float64
	for i := 0; i < 64; i++ {
		want = append(want, s.NormFloat64(), s.Float64())
	}
	r := New(7) // different state, fully overwritten by restore
	if err := r.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		var got float64
		if i%2 == 0 {
			got = r.NormFloat64()
		} else {
			got = r.Float64()
		}
		if got != w {
			t.Fatalf("draw %d: restored stream diverged: %v != %v", i, got, w)
		}
	}
	// Snapshot must be a copy, not an alias.
	snap2 := s.Snapshot()
	snap2[0] = 0xdead
	if s.Snapshot()[0] == 0xdead {
		t.Fatal("snapshot aliases generator state")
	}
}

func TestRestoreSnapshotRejectsBadInput(t *testing.T) {
	s := New(1)
	if err := s.RestoreSnapshot([]uint64{1, 2, 3}); err == nil {
		t.Fatal("short snapshot accepted")
	}
	if err := s.RestoreSnapshot(make([]uint64, SnapshotLen)); err == nil {
		t.Fatal("all-zero stream state accepted")
	}
}
