// Package xrand implements the deterministic, splittable random number
// generation used across SPICE.
//
// Reproducibility across a distributed campaign is essential: each of the
// paper's 72 production simulations must be independently seedable so a
// re-run on a different set of grid resources produces identical
// trajectories. xrand provides a xoshiro256** generator seeded through
// SplitMix64, a Split method deriving statistically independent streams,
// and Gaussian variates for the Langevin thermostat.
//
// The generator is NOT safe for concurrent use; each worker goroutine must
// own its own stream (use Split).
package xrand

import (
	"fmt"
	"math"
)

// Source is a xoshiro256** pseudo-random generator.
type Source struct {
	s [4]uint64
	// cached spare Gaussian deviate
	hasSpare bool
	spare    float64
}

// splitmix64 advances x and returns a well-mixed 64-bit value. It is the
// recommended seeding procedure for xoshiro generators.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed via SplitMix64.
func New(seed uint64) *Source {
	var s Source
	s.Seed(seed)
	return &s
}

// Seed resets the generator state from seed.
func (s *Source) Seed(seed uint64) {
	x := seed
	for i := range s.s {
		s.s[i] = splitmix64(&x)
	}
	// xoshiro requires a nonzero state; splitmix64 of anything yields
	// at least one nonzero word with overwhelming probability, but be
	// exact about it.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	s.hasSpare = false
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Split returns a new Source whose stream is statistically independent of
// the receiver's. The child is seeded from fresh output of the parent
// passed through SplitMix64, so parent and child never share state.
func (s *Source) Split() *Source {
	x := s.Uint64()
	child := New(splitmix64(&x))
	return child
}

// SplitN returns n independent child sources (convenience for worker pools).
func (s *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Split()
	}
	return out
}

// SnapshotLen is the number of words in a Source snapshot.
const SnapshotLen = 6

// Snapshot returns the complete generator state — the four xoshiro words
// plus the cached Gaussian spare — so a checkpointed simulation can resume
// bit-exactly. The layout is stable: [s0 s1 s2 s3 hasSpare spareBits].
func (s *Source) Snapshot() []uint64 {
	out := make([]uint64, SnapshotLen)
	copy(out, s.s[:])
	if s.hasSpare {
		out[4] = 1
	}
	out[5] = math.Float64bits(s.spare)
	return out
}

// RestoreSnapshot loads a state produced by Snapshot.
func (s *Source) RestoreSnapshot(w []uint64) error {
	if len(w) != SnapshotLen {
		return fmt.Errorf("xrand: snapshot has %d words, want %d", len(w), SnapshotLen)
	}
	if w[0]|w[1]|w[2]|w[3] == 0 {
		return fmt.Errorf("xrand: snapshot has all-zero stream state")
	}
	copy(s.s[:], w[:4])
	s.hasSpare = w[4] != 0
	s.spare = math.Float64frombits(w[5])
	return nil
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire-style rejection-free-ish bounded generation with a single
	// correction loop to remove modulo bias.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		r := s.Uint64()
		if r >= threshold {
			return int(r % bound)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// NormFloat64 returns a standard normal deviate (mean 0, stddev 1) using
// the Marsaglia polar method with a cached spare.
func (s *Source) NormFloat64() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.hasSpare = true
		return u * f
	}
}

// ExpFloat64 returns an exponential deviate with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Gamma returns a Gamma(shape k, scale θ=1) deviate using the
// Marsaglia–Tsang method; used by the grid workload generators.
func (s *Source) Gamma(k float64) float64 {
	if k < 1 {
		// Boost: Gamma(k) = Gamma(k+1) · U^{1/k}
		return s.Gamma(k+1) * math.Pow(s.Float64()+1e-300, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// LogNormal returns exp(mu + sigma·Z); used for job runtime jitter models.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}
