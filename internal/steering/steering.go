// Package steering reproduces the role of the RealityGrid computational
// steering framework (Fig. 2 of the paper): a registry through which
// components find each other, a control-message protocol carrying
// pause/resume/parameter-change/checkpoint/clone commands from steerers to
// running simulations, and the simulation-side loop that services those
// commands between MD steps.
//
// The data path (coordinate frames, steering forces) is package imd; this
// package is the control path, which in the original architecture flowed
// through intermediate grid services. Commands are serviced at step
// boundaries, so a steered simulation never observes a torn state.
package steering

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"spice/internal/md"
	"spice/internal/obs"
	"spice/internal/trace"
)

// Kind classifies registered services.
type Kind int

// Service kinds, mirroring the component boxes of the paper's Fig. 2a.
const (
	KindSimulation Kind = iota
	KindVisualizer
	KindInstrument // haptic devices: "just additional computing resources"
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSimulation:
		return "simulation"
	case KindVisualizer:
		return "visualizer"
	case KindInstrument:
		return "instrument"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ServiceInfo describes one registered component.
type ServiceInfo struct {
	Name string
	Kind Kind
	// Addr is the data-channel address (host:port for IMD).
	Addr string
	// Meta carries free-form attributes (site, machine, procs...).
	Meta map[string]string
}

// Registry is the service directory. It is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	services map[string]ServiceInfo
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{services: make(map[string]ServiceInfo)}
}

// Register adds or replaces a service entry.
func (r *Registry) Register(info ServiceInfo) error {
	if info.Name == "" {
		return errors.New("steering: service needs a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.services[info.Name] = info
	return nil
}

// Deregister removes a service.
func (r *Registry) Deregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.services, name)
}

// Lookup finds a service by name.
func (r *Registry) Lookup(name string) (ServiceInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	info, ok := r.services[name]
	return info, ok
}

// ByKind lists services of one kind, sorted by name.
func (r *Registry) ByKind(k Kind) []ServiceInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []ServiceInfo
	for _, s := range r.services {
		if s.Kind == k {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered services.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.services)
}

// CommandType enumerates steering commands.
type CommandType int

// Steering commands.
const (
	CmdPause CommandType = iota
	CmdResume
	CmdStop
	CmdSetParam
	CmdStatus
	CmdCheckpoint
	CmdClone
)

// String implements fmt.Stringer.
func (c CommandType) String() string {
	switch c {
	case CmdPause:
		return "pause"
	case CmdResume:
		return "resume"
	case CmdStop:
		return "stop"
	case CmdSetParam:
		return "set-param"
	case CmdStatus:
		return "status"
	case CmdCheckpoint:
		return "checkpoint"
	case CmdClone:
		return "clone"
	default:
		return fmt.Sprintf("cmd(%d)", int(c))
	}
}

// Command is one steering request. Reply must be buffered (capacity >= 1).
type Command struct {
	Type  CommandType
	Key   string // SetParam: parameter name; Clone: new sim name
	Value string // SetParam: value
	Seed  uint64 // Clone: RNG seed for the clone
	Reply chan Response
}

// Response is the result of a command.
type Response struct {
	OK         bool
	Err        string
	Status     map[string]string
	Checkpoint *trace.Checkpoint
	Clone      *Steered
}

// ParamHandler applies a steered parameter change; it runs between MD
// steps, so it may mutate engine terms safely.
type ParamHandler func(value string) error

// Steered wraps an engine with a steering control loop.
type Steered struct {
	Name string
	Eng  *md.Engine

	// Events, when set, receives one structured "steer_cmd" event per
	// serviced command — the control-path audit trail the paper's §V
	// diagnoses leaned on. Emission is nil-safe, so leaving it unset
	// costs nothing. Clones inherit the log.
	Events *obs.EventLog

	cmds   chan Command
	params map[string]ParamHandler
	paused bool
	stop   bool

	// StepsRun counts MD steps executed through this wrapper.
	StepsRun int
}

// NewSteered wraps eng.
func NewSteered(name string, eng *md.Engine) *Steered {
	return &Steered{
		Name:   name,
		Eng:    eng,
		cmds:   make(chan Command, 16),
		params: make(map[string]ParamHandler),
	}
}

// OnParam registers a steerable parameter.
func (s *Steered) OnParam(name string, h ParamHandler) { s.params[name] = h }

// Control returns the channel steerers send commands on.
func (s *Steered) Control() chan<- Command { return s.cmds }

// send issues a command and waits for the response (helper for Steerer).
func (s *Steered) send(c Command) Response {
	c.Reply = make(chan Response, 1)
	s.cmds <- c
	return <-c.Reply
}

// Run executes up to maxSteps MD steps, servicing steering commands at
// step boundaries. It returns early on CmdStop. While paused it blocks on
// the command channel (consuming no CPU — the expensive processors are
// released conceptually; the paper checkpoints instead for long pauses).
func (s *Steered) Run(maxSteps int) int {
	ran := 0
	for ran < maxSteps && !s.stop {
		// Service everything pending; block while paused.
		for {
			if s.paused {
				cmd, ok := <-s.cmds
				if !ok {
					return ran
				}
				s.handle(cmd)
				continue
			}
			select {
			case cmd, ok := <-s.cmds:
				if !ok {
					return ran
				}
				s.handle(cmd)
				continue
			default:
			}
			break
		}
		if s.stop {
			break
		}
		s.Eng.Step()
		s.StepsRun++
		ran++
	}
	return ran
}

func (s *Steered) handle(c Command) {
	resp := Response{OK: true}
	defer func() {
		if s.Events == nil {
			return
		}
		ev := obs.Event{Name: "steer_cmd", Fields: map[string]any{
			"sim": s.Name, "cmd": c.Type.String(),
		}}
		if c.Key != "" {
			ev.Fields["key"] = c.Key
		}
		if resp.Err != "" {
			ev.Fields["error"] = resp.Err
		}
		s.Events.Emit(ev)
	}()
	switch c.Type {
	case CmdPause:
		s.paused = true
	case CmdResume:
		s.paused = false
	case CmdStop:
		s.stop = true
	case CmdSetParam:
		h, ok := s.params[c.Key]
		if !ok {
			resp = Response{Err: fmt.Sprintf("unknown parameter %q", c.Key)}
		} else if err := h(c.Value); err != nil {
			resp = Response{Err: err.Error()}
		}
	case CmdStatus:
		st := s.Eng.State()
		resp.Status = map[string]string{
			"name":   s.Name,
			"step":   strconv.FormatInt(st.Step, 10),
			"time":   strconv.FormatFloat(st.Time, 'g', -1, 64),
			"epot":   strconv.FormatFloat(s.Eng.PotentialEnergy(), 'g', -1, 64),
			"temp":   strconv.FormatFloat(st.Temperature(), 'g', -1, 64),
			"paused": strconv.FormatBool(s.paused),
		}
	case CmdCheckpoint:
		resp.Checkpoint = s.Eng.Checkpoint()
	case CmdClone:
		eng, err := s.Eng.Clone(c.Seed)
		if err != nil {
			resp = Response{Err: err.Error()}
			break
		}
		name := c.Key
		if name == "" {
			name = s.Name + "-clone"
		}
		clone := NewSteered(name, eng)
		clone.Events = s.Events
		for k, h := range s.params {
			clone.params[k] = h
		}
		resp.Clone = clone
	default:
		resp = Response{Err: fmt.Sprintf("unknown command %v", c.Type)}
	}
	if c.Reply != nil {
		c.Reply <- resp
	}
}

// Steerer is the client-side handle used by the scientist's workstation.
type Steerer struct{ target *Steered }

// NewSteerer connects to a simulation through the registry-resolved
// target. (In-process transport: the registry stores the *Steered
// directly via Attach.)
func NewSteerer(target *Steered) *Steerer { return &Steerer{target: target} }

// Pause suspends the simulation at the next step boundary.
func (st *Steerer) Pause() error { return st.call(Command{Type: CmdPause}) }

// Resume continues a paused simulation.
func (st *Steerer) Resume() error { return st.call(Command{Type: CmdResume}) }

// Stop ends the run loop.
func (st *Steerer) Stop() error { return st.call(Command{Type: CmdStop}) }

// SetParam changes a registered steerable parameter.
func (st *Steerer) SetParam(key, value string) error {
	return st.call(Command{Type: CmdSetParam, Key: key, Value: value})
}

// Status fetches the live status readout.
func (st *Steerer) Status() (map[string]string, error) {
	r := st.target.send(Command{Type: CmdStatus})
	if r.Err != "" {
		return nil, errors.New(r.Err)
	}
	return r.Status, nil
}

// Checkpoint snapshots the simulation state.
func (st *Steerer) Checkpoint() (*trace.Checkpoint, error) {
	r := st.target.send(Command{Type: CmdCheckpoint})
	if r.Err != "" {
		return nil, errors.New(r.Err)
	}
	return r.Checkpoint, nil
}

// Clone duplicates the running simulation with a new RNG stream — the
// paper's "checkpoint and cloning ... for verification and validation
// tests without perturbing the original simulation".
func (st *Steerer) Clone(name string, seed uint64) (*Steered, error) {
	r := st.target.send(Command{Type: CmdClone, Key: name, Seed: seed})
	if r.Err != "" {
		return nil, errors.New(r.Err)
	}
	return r.Clone, nil
}

func (st *Steerer) call(c Command) error {
	r := st.target.send(c)
	if r.Err != "" {
		return errors.New(r.Err)
	}
	return nil
}
