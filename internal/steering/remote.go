package steering

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"spice/internal/netutil"
	"spice/internal/trace"
)

// The remote bridge carries steering commands over TCP so a steerer on
// the scientist's workstation can control a simulation on a remote grid
// resource — the role the intermediate grid services play in the paper's
// Fig. 2a. The wire format is JSON-lines: one request object per line,
// one response object per line, ordered.

// wireRequest is the on-the-wire command.
type wireRequest struct {
	Cmd   string `json:"cmd"`
	Key   string `json:"key,omitempty"`
	Value string `json:"value,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
}

// wireResponse is the on-the-wire reply.
type wireResponse struct {
	OK         bool              `json:"ok"`
	Err        string            `json:"err,omitempty"`
	Status     map[string]string `json:"status,omitempty"`
	Checkpoint []byte            `json:"checkpoint,omitempty"` // trace encoding
	CloneName  string            `json:"cloneName,omitempty"`
}

// commandNames maps wire command strings to CommandTypes.
var commandNames = map[string]CommandType{
	"pause":      CmdPause,
	"resume":     CmdResume,
	"stop":       CmdStop,
	"set-param":  CmdSetParam,
	"status":     CmdStatus,
	"checkpoint": CmdCheckpoint,
	"clone":      CmdClone,
}

// ControlServer bridges a listener to a steered simulation. Clones
// created through the bridge are registered in the registry (if given)
// and retained so they are not garbage collected mid-experiment.
type ControlServer struct {
	Target   *Steered
	Registry *Registry

	mu     sync.Mutex
	clones []*Steered
}

// NewControlServer wraps target.
func NewControlServer(target *Steered, reg *Registry) *ControlServer {
	return &ControlServer{Target: target, Registry: reg}
}

// Clones returns the simulations cloned through this bridge.
func (cs *ControlServer) Clones() []*Steered {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return append([]*Steered(nil), cs.clones...)
}

// Serve accepts steering connections until the listener closes. Each
// connection is served on its own goroutine; commands from concurrent
// steerers interleave at step boundaries like local ones.
func (cs *ControlServer) Serve(ln net.Listener) error {
	return cs.ServeContext(context.Background(), ln)
}

// ServeContext is Serve with graceful shutdown: when ctx is cancelled
// the listener and every live steering connection are closed, and the
// call waits for all connection handlers to return before reporting
// netutil.ErrServerClosed. Tests and daemons use it to stop the bridge
// without leaking goroutines.
func (cs *ControlServer) ServeContext(ctx context.Context, ln net.Listener) error {
	return netutil.Serve(ctx, ln, func(conn net.Conn) {
		_ = cs.serveConn(conn)
	})
}

// ServeConn handles one steering connection synchronously (exported for
// in-process tests and single-connection setups).
func (cs *ControlServer) ServeConn(conn net.Conn) error { return cs.serveConn(conn) }

func (cs *ControlServer) serveConn(conn net.Conn) error {
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return err // EOF on clean disconnect
		}
		resp := cs.handle(req)
		if err := enc.Encode(&resp); err != nil {
			return err
		}
		if req.Cmd == "stop" && resp.OK {
			return nil
		}
	}
}

func (cs *ControlServer) handle(req wireRequest) wireResponse {
	ct, ok := commandNames[req.Cmd]
	if !ok {
		return wireResponse{Err: fmt.Sprintf("unknown command %q", req.Cmd)}
	}
	r := cs.Target.send(Command{Type: ct, Key: req.Key, Value: req.Value, Seed: req.Seed})
	if r.Err != "" {
		return wireResponse{Err: r.Err}
	}
	out := wireResponse{OK: true, Status: r.Status}
	if r.Checkpoint != nil {
		var buf jsonBuffer
		if err := trace.WriteCheckpoint(&buf, r.Checkpoint); err != nil {
			return wireResponse{Err: "checkpoint encode: " + err.Error()}
		}
		out.Checkpoint = buf.data
	}
	if r.Clone != nil {
		cs.mu.Lock()
		cs.clones = append(cs.clones, r.Clone)
		cs.mu.Unlock()
		if cs.Registry != nil {
			_ = cs.Registry.Register(ServiceInfo{Name: r.Clone.Name, Kind: KindSimulation})
		}
		out.CloneName = r.Clone.Name
	}
	return out
}

// jsonBuffer is a minimal io.Writer over a byte slice.
type jsonBuffer struct{ data []byte }

func (b *jsonBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// RemoteSteerer is the client side of the bridge.
type RemoteSteerer struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
	mu   sync.Mutex
}

// Dial connects to a ControlServer.
func Dial(addr string) (*RemoteSteerer, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewRemoteSteerer(conn), nil
}

// NewRemoteSteerer wraps an established connection.
func NewRemoteSteerer(conn net.Conn) *RemoteSteerer {
	return &RemoteSteerer{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}
}

// Close releases the connection.
func (rs *RemoteSteerer) Close() error { return rs.conn.Close() }

func (rs *RemoteSteerer) roundTrip(req wireRequest) (wireResponse, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := rs.enc.Encode(&req); err != nil {
		return wireResponse{}, err
	}
	var resp wireResponse
	if err := rs.dec.Decode(&resp); err != nil {
		return wireResponse{}, err
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// Pause suspends the remote simulation.
func (rs *RemoteSteerer) Pause() error { _, err := rs.roundTrip(wireRequest{Cmd: "pause"}); return err }

// Resume continues the remote simulation.
func (rs *RemoteSteerer) Resume() error {
	_, err := rs.roundTrip(wireRequest{Cmd: "resume"})
	return err
}

// Stop ends the remote run loop.
func (rs *RemoteSteerer) Stop() error { _, err := rs.roundTrip(wireRequest{Cmd: "stop"}); return err }

// SetParam changes a steerable parameter remotely.
func (rs *RemoteSteerer) SetParam(key, value string) error {
	_, err := rs.roundTrip(wireRequest{Cmd: "set-param", Key: key, Value: value})
	return err
}

// Status fetches the live status readout.
func (rs *RemoteSteerer) Status() (map[string]string, error) {
	resp, err := rs.roundTrip(wireRequest{Cmd: "status"})
	if err != nil {
		return nil, err
	}
	return resp.Status, nil
}

// Checkpoint retrieves a restartable snapshot over the wire.
func (rs *RemoteSteerer) Checkpoint() (*trace.Checkpoint, error) {
	resp, err := rs.roundTrip(wireRequest{Cmd: "checkpoint"})
	if err != nil {
		return nil, err
	}
	return trace.ReadCheckpoint(bytes.NewReader(resp.Checkpoint))
}

// Clone duplicates the remote simulation; the clone lives on the server
// side (registered in its registry) and its name is returned.
func (rs *RemoteSteerer) Clone(name string, seed uint64) (string, error) {
	resp, err := rs.roundTrip(wireRequest{Cmd: "clone", Key: name, Seed: seed})
	if err != nil {
		return "", err
	}
	return resp.CloneName, nil
}
