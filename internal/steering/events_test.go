package steering

import (
	"testing"

	"spice/internal/obs"
)

// TestSteerCmdEvents: every serviced command leaves one structured
// steer_cmd event, errors included, and clones inherit the log.
func TestSteerCmdEvents(t *testing.T) {
	eng := testEngine(t, 1)
	s := NewSteered("sim0", eng)
	ev := obs.NewEventLog(nil, 64)
	s.Events = ev

	runDone := make(chan struct{})
	go func() {
		// Effectively unbounded: CmdStop is the only way out, so the
		// control loop is guaranteed alive for every command below.
		s.Run(1 << 40)
		close(runDone)
	}()
	st := NewSteerer(s)
	if err := st.Pause(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Status(); err != nil {
		t.Fatal(err)
	}
	if err := st.SetParam("no-such-param", "1"); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	clone, err := st.Clone("sim0-c", 99)
	if err != nil {
		t.Fatal(err)
	}
	if clone.Events != ev {
		t.Fatal("clone did not inherit the event log")
	}
	if err := st.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := st.Stop(); err != nil {
		t.Fatal(err)
	}
	<-runDone

	if n := ev.Count("steer_cmd"); n != 6 {
		t.Fatalf("recorded %d steer_cmd events, want 6", n)
	}
	var sawErr, sawClone bool
	for _, e := range ev.Recent(64) {
		if e.Name != "steer_cmd" {
			continue
		}
		if e.Fields["sim"] != "sim0" {
			t.Fatalf("event names sim %v, want sim0", e.Fields["sim"])
		}
		switch e.Fields["cmd"] {
		case "set-param":
			if s, _ := e.Fields["error"].(string); s != "" {
				sawErr = true
			}
		case "clone":
			sawClone = true
		}
	}
	if !sawErr {
		t.Fatal("failed set-param left no error field in its event")
	}
	if !sawClone {
		t.Fatal("clone command left no event")
	}
}
