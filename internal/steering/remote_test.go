package steering

import (
	"context"
	"errors"
	"net"
	"strconv"
	"testing"
	"time"

	"spice/internal/netutil"
)

// remotePair wires a ControlServer to a RemoteSteerer over an in-memory
// duplex connection and starts the steered simulation.
func remotePair(t *testing.T, seed uint64) (*ControlServer, *RemoteSteerer, *Registry, chan int) {
	t.Helper()
	reg := NewRegistry()
	s := NewSteered("remote-sim", testEngine(t, seed))
	s.OnParam("bias", func(v string) error {
		_, err := strconv.ParseFloat(v, 64)
		return err
	})
	cs := NewControlServer(s, reg)
	clientConn, serverConn := net.Pipe()
	go func() { _ = cs.ServeConn(serverConn) }()
	done := make(chan int, 1)
	go func() { done <- s.Run(1 << 30) }()
	rs := NewRemoteSteerer(clientConn)
	t.Cleanup(func() { rs.Close(); serverConn.Close() })
	return cs, rs, reg, done
}

func TestRemotePauseStatusResumeStop(t *testing.T) {
	_, rs, _, done := remotePair(t, 41)
	if err := rs.Pause(); err != nil {
		t.Fatal(err)
	}
	st, err := rs.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st["paused"] != "true" || st["name"] != "remote-sim" {
		t.Fatalf("status = %v", st)
	}
	if err := rs.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := rs.Stop(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("simulation did not stop")
	}
}

func TestRemoteSetParam(t *testing.T) {
	_, rs, _, done := remotePair(t, 42)
	if err := rs.SetParam("bias", "2.5"); err != nil {
		t.Fatal(err)
	}
	if err := rs.SetParam("bias", "junk"); err == nil {
		t.Fatal("handler error not propagated over the wire")
	}
	if err := rs.SetParam("missing", "1"); err == nil {
		t.Fatal("unknown param accepted over the wire")
	}
	_ = rs.Stop()
	<-done
}

func TestRemoteCheckpointRoundTrip(t *testing.T) {
	_, rs, _, done := remotePair(t, 43)
	ck, err := rs.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Pos) != 5 || len(ck.Vel) != 5 {
		t.Fatalf("checkpoint has %d atoms", len(ck.Pos))
	}
	_ = rs.Stop()
	<-done
}

func TestRemoteCloneRegisters(t *testing.T) {
	cs, rs, reg, done := remotePair(t, 44)
	name, err := rs.Clone("remote-clone", 77)
	if err != nil {
		t.Fatal(err)
	}
	if name != "remote-clone" {
		t.Fatalf("clone name = %q", name)
	}
	if _, ok := reg.Lookup("remote-clone"); !ok {
		t.Fatal("clone not registered")
	}
	clones := cs.Clones()
	if len(clones) != 1 || clones[0].Name != "remote-clone" {
		t.Fatalf("server retained %v", clones)
	}
	// The clone is runnable server-side.
	if ran := clones[0].Run(10); ran != 10 {
		t.Fatalf("clone ran %d steps", ran)
	}
	_ = rs.Stop()
	<-done
}

func TestRemoteUnknownCommand(t *testing.T) {
	_, rs, _, done := remotePair(t, 45)
	if _, err := rs.roundTrip(wireRequest{Cmd: "explode"}); err == nil {
		t.Fatal("unknown command accepted")
	}
	_ = rs.Stop()
	<-done
}

func TestControlServerOverTCP(t *testing.T) {
	reg := NewRegistry()
	s := NewSteered("tcp-sim", testEngine(t, 46))
	cs := NewControlServer(s, reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- cs.ServeContext(ctx, ln) }()
	done := make(chan int, 1)
	go func() { done <- s.Run(1 << 30) }()

	rs, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	st, err := rs.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st["name"] != "tcp-sim" {
		t.Fatalf("status over TCP: %v", st)
	}
	if err := rs.Stop(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stop over TCP did not land")
	}

	// Graceful shutdown: cancelling the context must close the bridge
	// and return without leaking the accept loop or connection handlers.
	cancel()
	select {
	case err := <-served:
		if !errors.Is(err, netutil.ErrServerClosed) {
			t.Fatalf("ServeContext returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeContext did not return after cancel")
	}
}
