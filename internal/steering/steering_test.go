package steering

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"spice/internal/forcefield"
	"spice/internal/md"
	"spice/internal/topology"
	"spice/internal/vec"
)

func testEngine(t *testing.T, seed uint64) *md.Engine {
	t.Helper()
	top := topology.New()
	p := topology.DefaultDNA(5)
	_, pos, err := topology.BuildDNA(top, p)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := md.New(md.Config{
		Top:   top,
		Init:  pos,
		Terms: []forcefield.Term{forcefield.Bonds{Top: top}},
		Seed:  seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestRegistryCRUD(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(ServiceInfo{Name: ""}); err == nil {
		t.Fatal("nameless service accepted")
	}
	_ = r.Register(ServiceInfo{Name: "sim1", Kind: KindSimulation, Addr: "host:1"})
	_ = r.Register(ServiceInfo{Name: "viz1", Kind: KindVisualizer, Addr: "host:2"})
	_ = r.Register(ServiceInfo{Name: "haptic1", Kind: KindInstrument, Addr: "host:3"})
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	info, ok := r.Lookup("sim1")
	if !ok || info.Addr != "host:1" {
		t.Fatalf("lookup = %+v, %v", info, ok)
	}
	sims := r.ByKind(KindSimulation)
	if len(sims) != 1 || sims[0].Name != "sim1" {
		t.Fatalf("ByKind = %v", sims)
	}
	r.Deregister("sim1")
	if _, ok := r.Lookup("sim1"); ok {
		t.Fatal("deregistered service still present")
	}
	// Replace semantics.
	_ = r.Register(ServiceInfo{Name: "viz1", Kind: KindVisualizer, Addr: "host:99"})
	info, _ = r.Lookup("viz1")
	if info.Addr != "host:99" {
		t.Fatal("re-register did not replace")
	}
}

func TestRegistryByKindSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"c", "a", "b"} {
		_ = r.Register(ServiceInfo{Name: n, Kind: KindSimulation})
	}
	got := r.ByKind(KindSimulation)
	if got[0].Name != "a" || got[1].Name != "b" || got[2].Name != "c" {
		t.Fatalf("not sorted: %v", got)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				name := fmt.Sprintf("svc-%d-%d", i, j)
				_ = r.Register(ServiceInfo{Name: name, Kind: KindSimulation})
				r.Lookup(name)
				r.ByKind(KindSimulation)
			}
		}(i)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("len = %d", r.Len())
	}
}

// runSteered runs s.Run in a goroutine and returns a done channel.
func runSteered(s *Steered, steps int) chan int {
	done := make(chan int, 1)
	go func() { done <- s.Run(steps) }()
	return done
}

func TestPauseResumeStop(t *testing.T) {
	s := NewSteered("sim", testEngine(t, 1))
	st := NewSteerer(s)
	done := runSteered(s, 1<<30)

	if err := st.Pause(); err != nil {
		t.Fatal(err)
	}
	status, err := st.Status()
	if err != nil {
		t.Fatal(err)
	}
	if status["paused"] != "true" {
		t.Fatalf("status = %v", status)
	}
	stepAtPause, _ := strconv.ParseInt(status["step"], 10, 64)
	// While paused the step count must not advance.
	status2, _ := st.Status()
	stepLater, _ := strconv.ParseInt(status2["step"], 10, 64)
	if stepLater != stepAtPause {
		t.Fatalf("stepped while paused: %d -> %d", stepAtPause, stepLater)
	}
	if err := st.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := st.Stop(); err != nil {
		t.Fatal(err)
	}
	ran := <-done
	if ran < 1 {
		t.Fatalf("ran = %d steps", ran)
	}
}

func TestRunCompletesWithoutCommands(t *testing.T) {
	s := NewSteered("sim", testEngine(t, 2))
	if got := s.Run(25); got != 25 {
		t.Fatalf("ran %d, want 25", got)
	}
	if s.StepsRun != 25 {
		t.Fatalf("StepsRun = %d", s.StepsRun)
	}
	if s.Eng.State().Step != 25 {
		t.Fatalf("engine step = %d", s.Eng.State().Step)
	}
}

func TestSetParam(t *testing.T) {
	eng := testEngine(t, 3)
	s := NewSteered("sim", eng)
	var gotValue string
	s.OnParam("pull-force", func(v string) error {
		gotValue = v
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return err
		}
		eng.External.Set(0, vec.V{Z: f})
		return nil
	})
	st := NewSteerer(s)
	done := runSteered(s, 1<<30)
	if err := st.SetParam("pull-force", "2.5"); err != nil {
		t.Fatal(err)
	}
	if gotValue != "2.5" {
		t.Fatalf("handler saw %q", gotValue)
	}
	if err := st.SetParam("pull-force", "not-a-number"); err == nil {
		t.Fatal("handler error not propagated")
	}
	if err := st.SetParam("nope", "1"); err == nil {
		t.Fatal("unknown param accepted")
	}
	_ = st.Stop()
	<-done
}

func TestCheckpointViaSteerer(t *testing.T) {
	s := NewSteered("sim", testEngine(t, 4))
	st := NewSteerer(s)
	done := runSteered(s, 1<<30)
	ck, err := st.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Pos) != 5 {
		t.Fatalf("checkpoint atoms = %d", len(ck.Pos))
	}
	_ = st.Stop()
	<-done
}

func TestCloneDoesNotPerturbOriginal(t *testing.T) {
	s := NewSteered("sim", testEngine(t, 5))
	st := NewSteerer(s)
	done := runSteered(s, 1<<30)
	clone, err := st.Clone("sim-clone", 77)
	if err != nil {
		t.Fatal(err)
	}
	_ = st.Stop()
	<-done

	if clone.Name != "sim-clone" {
		t.Fatalf("clone name = %q", clone.Name)
	}
	origStep := s.Eng.State().Step
	// Run the clone independently; the original must not move.
	clone.Run(100)
	if s.Eng.State().Step != origStep {
		t.Fatal("running the clone advanced the original")
	}
	if clone.Eng.State().Step <= 0 {
		t.Fatal("clone did not run")
	}
}

func TestCloneDefaultName(t *testing.T) {
	s := NewSteered("sim", testEngine(t, 6))
	st := NewSteerer(s)
	done := runSteered(s, 1<<30)
	clone, err := st.Clone("", 1)
	if err != nil {
		t.Fatal(err)
	}
	if clone.Name != "sim-clone" {
		t.Fatalf("default clone name = %q", clone.Name)
	}
	_ = st.Stop()
	<-done
}

func TestKindAndCommandStrings(t *testing.T) {
	if KindSimulation.String() != "simulation" || KindVisualizer.String() != "visualizer" || KindInstrument.String() != "instrument" {
		t.Fatal("kind labels")
	}
	for c, want := range map[CommandType]string{
		CmdPause: "pause", CmdResume: "resume", CmdStop: "stop",
		CmdSetParam: "set-param", CmdStatus: "status",
		CmdCheckpoint: "checkpoint", CmdClone: "clone",
	} {
		if c.String() != want {
			t.Fatalf("%d -> %q, want %q", int(c), c.String(), want)
		}
	}
}
