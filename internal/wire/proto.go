package wire

// The message vocabulary of the coordinator↔worker conversation. These
// structs used to live in internal/dist; they moved here so the codec
// layer owns the full wire contract — field set, JSON tags for v0, and
// the binary field table for v1 — while dist aliases them under its
// historical names. The conversation is strictly request/response,
// worker-initiated: every worker message gets exactly one coordinator
// message back, so framing never needs message IDs in either version.

import (
	"spice/internal/campaign"
	"spice/internal/trace"
)

// Message types.
const (
	// worker → coordinator
	MsgHello    = "hello"    // register + negotiate; reply carries the system payload
	MsgNext     = "next"     // request a job; reply assign/wait/drained
	MsgBeat     = "beat"     // lease heartbeat, no new checkpoint
	MsgProgress = "progress" // heartbeat carrying a fresh checkpoint
	MsgResult   = "result"   // job finished, log attached
	MsgFail     = "fail"     // job failed on this worker

	// coordinator → worker
	MsgOK      = "ok"      // ack; hello's ok carries the system payload
	MsgAssign  = "assign"  // here is a job (spec + maybe a resume checkpoint)
	MsgWait    = "wait"    // nothing runnable right now, retry in DelayMs
	MsgDrained = "drained" // coordinator is closing for good, disconnect
	MsgAbandon = "abandon" // lease was revoked; stop working on the job
	// MsgRetry answers a result the coordinator cannot durably record
	// right now (degraded storage): the worker keeps the line in its
	// outbox and retransmits after DelayMs. Unlike ok-with-err this is
	// NOT an acknowledgment — the result is neither merged nor dropped,
	// so a storage outage never turns into an acked-but-lost result.
	MsgRetry = "retry"
)

// Request is a worker → coordinator message.
type Request struct {
	Type string `json:"type"`
	Name string `json:"name,omitempty"` // hello: worker name
	// Site is the worker's site identity on hello (spiced -site) — the
	// grain at which the coordinator tracks health, runs circuit
	// breakers, and places speculative hedges (never on the site already
	// holding the lease). Empty falls back to the worker name, so every
	// unconfigured worker is its own one-machine site.
	Site  string `json:"site,omitempty"`
	JobID string `json:"jobId,omitempty"` // beat/progress/result/fail
	// Attempt echoes the lease attempt the worker was assigned, making
	// result/fail handling idempotent by (job, attempt): a line from a
	// lease the coordinator already retired is acked and dropped rather
	// than applied twice. 0 (old workers) is treated as a wildcard.
	Attempt int `json:"attempt,omitempty"`
	// Ckpt is the smd.PullCheckpoint on progress messages — plain JSON
	// on v0 connections, possibly compressed or delta-encoded against
	// the last acknowledged base on v1. It stays opaque to the
	// coordinator's scheduler; only the payload layer folds it.
	Ckpt *Payload `json:"ckpt,omitempty"`
	// Log is the result payload. Go's encoding/json prints float64
	// values with enough digits to round-trip exactly, so shipping work
	// samples as JSON preserves bit-identity.
	Log *trace.WorkLog `json:"log,omitempty"`
	Err string         `json:"err,omitempty"` // fail reason

	// Negotiation fields, meaningful on hello only. Wire is the newest
	// protocol version the worker speaks (absent = 0 = the legacy JSON
	// transport, which is exactly what an old worker sends); NoDelta and
	// NoComp opt out of incremental checkpoints and payload compression
	// even when the negotiated version would support them.
	Wire    int  `json:"wire,omitempty"`
	NoDelta bool `json:"noDelta,omitempty"`
	NoComp  bool `json:"noComp,omitempty"`
}

// Response is a coordinator → worker message.
type Response struct {
	Type string `json:"type"`
	Job  *Job   `json:"job,omitempty"` // assign
	// Resume rides on assign: the latest folded checkpoint, always a
	// complete image (plain or compressed, never a delta — the new
	// lease holder has no base yet).
	Resume  *Payload `json:"resume,omitempty"`
	DelayMs int      `json:"delayMs,omitempty"` // wait
	// Spec rides on assign messages (campaigns change between jobs on a
	// long-lived coordinator); System rides on the hello reply.
	Spec   *campaign.Spec `json:"spec,omitempty"`
	System *Payload       `json:"system,omitempty"`
	Err    string         `json:"err,omitempty"`

	// Negotiation fields on the hello reply: the granted version
	// (absent = 0 — what an old coordinator sends) and whether delta
	// checkpoints / payload compression are on for this connection.
	Wire  int  `json:"wire,omitempty"`
	Delta bool `json:"delta,omitempty"`
	Comp  bool `json:"comp,omitempty"`
	// NeedFull on a progress ack tells the worker its delta was encoded
	// against a base this coordinator does not hold (restart, lost ack,
	// adoption): drop the base and send the next checkpoint complete.
	NeedFull bool `json:"needFull,omitempty"`
}

// Job identifies one pull assignment.
type Job struct {
	ID      string         `json:"id"`
	Combo   campaign.Combo `json:"combo"`
	Seed    uint64         `json:"seed"`
	Index   int            `json:"index"`
	Attempt int            `json:"attempt,omitempty"` // lease attempt to echo back
}
