package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"spice/internal/campaign"
	"spice/internal/trace"
)

func TestNegotiate(t *testing.T) {
	cases := []struct {
		localMax, offered int
		want              int
		downgraded        bool
	}{
		{MaxVersion, 0, V0, false},  // old worker: no offer
		{MaxVersion, -1, V0, false}, // nonsense offer
		{MaxVersion, V1, V1, false},
		{V0, V1, V0, false},                    // coordinator pinned to v0
		{MaxVersion, MaxVersion + 5, V0, true}, // future version: downgrade, log
		{99, V1, V1, false},                    // misconfigured localMax clamps
	}
	for _, c := range cases {
		got, down := Negotiate(c.localMax, c.offered)
		if got != c.want || down != c.downgraded {
			t.Errorf("Negotiate(%d, %d) = (%d, %v), want (%d, %v)",
				c.localMax, c.offered, got, down, c.want, c.downgraded)
		}
	}
}

// growingDoc imitates a checkpoint whose sample log extends: the shape
// delta encoding must exploit.
func growingDoc(n int) []byte {
	var buf bytes.Buffer
	buf.WriteString(`{"engine":{"pos":[0.1,0.2,0.3]},"samples":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, `{"t":%d,"q":%0.6f}`, i, float64(i)*0.137)
	}
	buf.WriteString(`],"steps":`)
	fmt.Fprintf(&buf, "%d}", n*8)
	return buf.Bytes()
}

func TestPayloadRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	random := make([]byte, 4096)
	rng.Read(random)
	docs := [][]byte{
		[]byte(`{}`),
		[]byte(`{"a":1}`),
		growingDoc(500),
		random,                              // incompressible
		bytes.Repeat([]byte("spice"), 2000), // highly repetitive
	}
	for i, doc := range docs {
		for _, mk := range []struct {
			name string
			p    *Payload
		}{
			{"plain", JSONPayload(doc)},
			{"compress", Compress(doc)},
			{"delta-empty-base", Delta(nil, doc)},
		} {
			got, err := mk.p.Resolve(nil)
			if err != nil {
				t.Fatalf("doc %d %s: resolve: %v", i, mk.name, err)
			}
			if !bytes.Equal(got, doc) {
				t.Fatalf("doc %d %s: round trip mismatch", i, mk.name)
			}
		}
	}
}

func TestDeltaRoundTripAndRatio(t *testing.T) {
	base := growingDoc(500)
	next := growingDoc(520)
	d := Delta(base, next)
	if !d.IsDelta() {
		t.Fatalf("expected a delta payload")
	}
	got, err := d.Resolve(base)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if !bytes.Equal(got, next) {
		t.Fatalf("delta round trip mismatch")
	}
	if ratio := float64(len(next)) / float64(d.WireLen()); ratio < 10 {
		t.Fatalf("delta ratio %.1fx on growing doc, want >= 10x (wire %d raw %d)",
			ratio, d.WireLen(), len(next))
	}
}

func TestDeltaBaseMismatch(t *testing.T) {
	base := growingDoc(100)
	next := growingDoc(110)
	d := Delta(base, next)
	if _, err := d.Resolve(growingDoc(90)); !errors.Is(err, ErrBaseMismatch) {
		t.Fatalf("wrong base: got %v, want ErrBaseMismatch", err)
	}
	if _, err := d.Resolve(nil); !errors.Is(err, ErrBaseMismatch) {
		t.Fatalf("no base: got %v, want ErrBaseMismatch", err)
	}
}

func TestPayloadCorruptionIsAnError(t *testing.T) {
	base := growingDoc(50)
	for _, p := range []*Payload{Compress(growingDoc(200)), Delta(base, growingDoc(60))} {
		if p.Flags == 0 {
			t.Fatalf("test doc did not compress")
		}
		for i := 0; i < len(p.Data); i++ {
			mut := &Payload{Encoding: p.Encoding, Flags: p.Flags, Data: append([]byte(nil), p.Data...)}
			mut.Data[i] ^= 0x55
			out, err := mut.Resolve(base)
			// Any outcome but a silent wrong answer is acceptable; most
			// mutations must error via CRC or bounds checks.
			if err == nil && p.Flags == FlagDelta {
				t.Fatalf("delta survived mutation at byte %d without CRC failure", i)
			}
			_ = out
		}
		// Truncations must error, not panic.
		for n := 0; n < len(p.Data); n++ {
			mut := &Payload{Encoding: p.Encoding, Flags: p.Flags, Data: p.Data[:n]}
			if _, err := mut.Resolve(base); err == nil && p.Flags == FlagDelta {
				t.Fatalf("truncated delta at %d resolved cleanly", n)
			}
		}
	}
	if _, err := (&Payload{Encoding: 9, Data: []byte("x")}).Resolve(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown encoding: got %v", err)
	}
	if _, err := (&Payload{Flags: 0x80, Data: []byte("x")}).Resolve(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown flags: got %v", err)
	}
}

func TestPayloadJSONCompat(t *testing.T) {
	// Plain payloads travel verbatim inside a JSON message — the v0
	// byte-compatibility contract.
	req := Request{Type: MsgProgress, JobID: "j1", Ckpt: JSONPayload([]byte(`{"steps":42}`))}
	b, err := json.Marshal(&req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	want := `{"type":"progress","jobId":"j1","ckpt":{"steps":42}}`
	if string(b) != want {
		t.Fatalf("v0 wire bytes:\n got %s\nwant %s", b, want)
	}
	var back Request
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	raw, err := back.Ckpt.Resolve(nil)
	if err != nil || string(raw) != `{"steps":42}` {
		t.Fatalf("round trip: %s, %v", raw, err)
	}
	// A non-plain payload on a JSON connection is a negotiation bug and
	// must refuse loudly rather than corrupt the peer's stream.
	bad := Request{Type: MsgProgress, Ckpt: Compress(growingDoc(200))}
	if bad.Ckpt.Flags == 0 {
		t.Fatalf("test doc did not compress")
	}
	if _, err := json.Marshal(&bad); err == nil {
		t.Fatalf("compressed payload marshaled onto a JSON connection")
	}
	// Absent and null fields decode to nil.
	var r2 Request
	if err := json.Unmarshal([]byte(`{"type":"beat","ckpt":null}`), &r2); err != nil {
		t.Fatalf("unmarshal null: %v", err)
	}
	if r2.Ckpt != nil {
		t.Fatalf("null ckpt decoded to %+v", r2.Ckpt)
	}
}

func testSpec() *campaign.Spec {
	return &campaign.Spec{
		Kappas:     []float64{100, 1000},
		Velocities: []float64{800},
		Replicas:   2,
		Distance:   3,
		Seed:       21,
	}
}

func codecPair(t *testing.T, version int, compress bool) (client, server Codec) {
	t.Helper()
	c2s := &bytes.Buffer{}
	s2c := &bytes.Buffer{}
	return NewCodec(version, s2c, c2s, compress), NewCodec(version, c2s, s2c, compress)
}

func TestCodecRoundTrips(t *testing.T) {
	reqs := []*Request{
		{Type: MsgHello, Name: "w1", Site: "site-a", Wire: V1, NoDelta: true, NoComp: true},
		{Type: MsgNext, Name: "w1"},
		{Type: MsgBeat, JobID: "j1", Attempt: 3},
		{Type: MsgProgress, JobID: "j1", Attempt: 3, Ckpt: Delta(growingDoc(100), growingDoc(110))},
		{Type: MsgResult, JobID: "j1", Attempt: 3,
			Log: &trace.WorkLog{Kappa: 100, Velocity: 800, Seed: 7, Samples: []trace.WorkSample{{Lambda: 0.5, Z: 0.4, Work: 0.25}}}},
		{Type: MsgFail, JobID: "j2", Err: "boom"},
	}
	resps := []*Response{
		{Type: MsgOK, System: Compress(growingDoc(300)), Wire: V1, Delta: true, Comp: true},
		{Type: MsgOK, NeedFull: true},
		{Type: MsgWait, DelayMs: 250},
		{Type: MsgAssign, Job: &Job{ID: "j1", Combo: campaign.Combo{KappaPN: 100, VAns: 800}, Seed: 9, Index: 2, Attempt: 3},
			Spec: testSpec(), Resume: Compress(growingDoc(150))},
		{Type: MsgDrained},
		{Type: MsgAbandon, Err: "lease revoked"},
		{Type: MsgRetry, DelayMs: 500, Err: "storage degraded"},
	}
	for _, version := range []int{V0, V1} {
		for _, compress := range []bool{false, true} {
			client, server := codecPair(t, version, compress)
			for _, req := range reqs {
				if version == V0 && req.Ckpt.IsDelta() {
					continue // deltas never travel on v0
				}
				if err := client.Encode(req); err != nil {
					t.Fatalf("v%d encode %s: %v", version, req.Type, err)
				}
				var got Request
				if err := server.Decode(&got); err != nil {
					t.Fatalf("v%d decode %s: %v", version, req.Type, err)
				}
				normalizePayloads(&got.Ckpt, req.Ckpt)
				if !reflect.DeepEqual(&got, req) {
					t.Fatalf("v%d comp=%v request %s mismatch:\n got %+v\nwant %+v",
						version, compress, req.Type, &got, req)
				}
			}
			for _, resp := range resps {
				if version == V0 && (payloadFlagged(resp.System) || payloadFlagged(resp.Resume)) {
					continue
				}
				if err := server.Encode(resp); err != nil {
					t.Fatalf("v%d encode %s: %v", version, resp.Type, err)
				}
				var got Response
				if err := client.Decode(&got); err != nil {
					t.Fatalf("v%d decode %s: %v", version, resp.Type, err)
				}
				normalizePayloads(&got.Resume, resp.Resume)
				normalizePayloads(&got.System, resp.System)
				if !reflect.DeepEqual(&got, resp) {
					t.Fatalf("v%d comp=%v response %s mismatch:\n got %+v\nwant %+v",
						version, compress, resp.Type, &got, resp)
				}
			}
		}
	}
}

func payloadFlagged(p *Payload) bool { return p != nil && p.Flags != 0 }

// normalizePayloads smooths over representation differences that are
// not semantic: a nil Data vs empty, and resolves both sides to compare
// the underlying document.
func normalizePayloads(got **Payload, want *Payload) {
	if *got == nil || want == nil {
		return
	}
	g, err1 := (*got).Resolve(nil)
	w, err2 := want.Resolve(nil)
	if err1 == nil && err2 == nil && bytes.Equal(g, w) {
		*got = want
	}
}

func TestCodecStrictDecode(t *testing.T) {
	_, server := codecPair(t, V1, false)
	// Feed the server's reader hand-built garbage frames.
	for _, rec := range [][]byte{
		{},                 // empty frame
		{3, 1, 1},          // unknown kind
		{1, 0xFF, 0xFF, 1}, // unknown bitmap bits
		{1, 1, 99},         // unknown message code
		{1, 1, 1, 7},       // trailing bytes
	} {
		c2s := &bytes.Buffer{}
		rw := trace.NewRecordWriter(c2s, false)
		if err := rw.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := rw.Flush(); err != nil {
			t.Fatal(err)
		}
		server = NewCodec(V1, c2s, &bytes.Buffer{}, false)
		var got Request
		if err := server.Decode(&got); err == nil {
			t.Fatalf("garbage frame %v decoded cleanly to %+v", rec, got)
		}
	}
}

func TestCodecRejectsUnknownType(t *testing.T) {
	client, _ := codecPair(t, V1, false)
	if err := client.Encode(&Request{Type: "nonsense"}); err == nil {
		t.Fatalf("unknown message type encoded")
	}
	if err := client.Encode("not a message"); err == nil {
		t.Fatalf("non-message value encoded")
	}
}
