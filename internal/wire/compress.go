package wire

// The block compressor behind FlagCompressed and FlagDelta: a small
// LZ77 coder over the standard library only (the container bakes in no
// snappy/zstd, and a hand-rolled coder lets delta encoding fall out of
// the same machinery). The op stream reproduces src by interleaving
// literal runs with back-references into everything already produced —
// including, crucially, a dictionary prepended to the match window.
// Compress passes an empty dictionary; Delta passes the previous
// checkpoint, so the unchanged bulk of a document that grows by
// appending collapses into a few long matches. This is what makes
// incremental checkpoints pay: a JSON re-encode shifts byte alignment
// enough that XOR-style deltas see noise, but substring reuse against
// the previous image survives any float reformatting that did not
// actually change the values.
//
// Integrity is layered above and around: the v1 codec CRCs every frame
// (trace records), and delta payloads carry base/output CRCs, so the
// coder itself only needs to fail cleanly on malformed input, never
// silently read out of bounds.

import (
	"encoding/binary"
	"fmt"
)

const (
	// minMatch is the shortest back-reference worth encoding: a match
	// costs a tag varint plus a distance varint, at least 2-3 bytes.
	minMatch = 4
	// tableBits sizes the match-candidate hash table (one candidate per
	// bucket, newest wins — the usual fast-LZ compromise).
	tableBits = 15
	// maxRaw bounds a decoded document so a corrupt length field cannot
	// drive an unbounded allocation (mirrors trace's record limit).
	maxRaw = 64 << 20
)

func hash4(v uint32) uint32 { return (v * 2654435761) >> (32 - tableBits) }

// lzEncode appends to dst an op stream reproducing src, with dict
// prepended to the match window. Each op starts with a uvarint tag:
// even tags are literal runs (tag>>1 raw bytes follow), odd tags are
// matches of length minMatch+tag>>1 followed by a uvarint distance
// back from the current position, which may reach into dict.
func lzEncode(dst, dict, src []byte) []byte {
	hist := make([]byte, 0, len(dict)+len(src))
	hist = append(hist, dict...)
	hist = append(hist, src...)
	table := make([]int32, 1<<tableBits)
	for i := range table {
		table[i] = -1
	}
	// Seed the table with dictionary positions so the first bytes of
	// src can match into the dictionary immediately.
	for i := 0; i+minMatch <= len(dict); i++ {
		table[hash4(binary.LittleEndian.Uint32(hist[i:]))] = int32(i)
	}
	litStart := len(dict)
	pos := len(dict)
	flushLit := func(end int) {
		if end > litStart {
			dst = binary.AppendUvarint(dst, uint64(end-litStart)<<1)
			dst = append(dst, hist[litStart:end]...)
		}
	}
	for pos+minMatch <= len(hist) {
		h := hash4(binary.LittleEndian.Uint32(hist[pos:]))
		cand := table[h]
		table[h] = int32(pos)
		if cand < 0 || binary.LittleEndian.Uint32(hist[cand:]) != binary.LittleEndian.Uint32(hist[pos:]) {
			pos++
			continue
		}
		length := minMatch
		for pos+length < len(hist) && hist[int(cand)+length] == hist[pos+length] {
			length++
		}
		flushLit(pos)
		dst = binary.AppendUvarint(dst, uint64(length-minMatch)<<1|1)
		dst = binary.AppendUvarint(dst, uint64(pos-int(cand)))
		// Index a stride of positions inside the match so later data can
		// still find this region; indexing every byte of a long match
		// costs more than it recovers.
		end := pos + length
		for i := pos + 1; i < end && i+minMatch <= len(hist); i += 7 {
			table[hash4(binary.LittleEndian.Uint32(hist[i:]))] = int32(i)
		}
		pos = end
		litStart = pos
	}
	flushLit(len(hist))
	return dst
}

// lzDecode reproduces the rawLen bytes lzEncode produced ops for,
// given the same dict. Every bound is checked: malformed input yields
// ErrCorrupt, never a panic or an out-of-range read.
func lzDecode(dict, ops []byte, rawLen uint64) ([]byte, error) {
	if rawLen > maxRaw {
		return nil, fmt.Errorf("wire: raw length %d exceeds limit: %w", rawLen, ErrCorrupt)
	}
	want := len(dict) + int(rawLen)
	hist := make([]byte, len(dict), want)
	copy(hist, dict)
	for len(ops) > 0 {
		tag, n := binary.Uvarint(ops)
		if n <= 0 || tag>>1 > maxRaw {
			return nil, fmt.Errorf("wire: bad op tag: %w", ErrCorrupt)
		}
		ops = ops[n:]
		if tag&1 == 0 {
			lit := int(tag >> 1)
			if lit > len(ops) || len(hist)+lit > want {
				return nil, fmt.Errorf("wire: literal run out of range: %w", ErrCorrupt)
			}
			hist = append(hist, ops[:lit]...)
			ops = ops[lit:]
			continue
		}
		length := minMatch + int(tag>>1)
		dist, n := binary.Uvarint(ops)
		if n <= 0 {
			return nil, fmt.Errorf("wire: bad match distance: %w", ErrCorrupt)
		}
		ops = ops[n:]
		src := len(hist) - int(dist)
		if dist == 0 || dist > uint64(len(hist)) || src < 0 || len(hist)+length > want {
			return nil, fmt.Errorf("wire: match out of range: %w", ErrCorrupt)
		}
		// Byte-wise copy: a match may overlap its own output (RLE-style
		// runs encode as distance < length).
		for i := 0; i < length; i++ {
			hist = append(hist, hist[src+i])
		}
	}
	if len(hist) != want {
		return nil, fmt.Errorf("wire: decoded %d bytes, want %d: %w", len(hist)-len(dict), rawLen, ErrCorrupt)
	}
	return hist[len(dict):], nil
}
