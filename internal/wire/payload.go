// Package wire is the versioned coordinator↔worker transport: the
// message vocabulary (Request/Response), the opaque bulk Payload type
// with explicit compression/delta flags, and the Codec implementations
// behind per-connection version negotiation.
//
// Two versions exist. v0 is the original JSON-lines protocol — one
// request and one response object per line, netcat-debuggable, byte
// identical to what the dist package spoke before this package existed,
// so old workers and coordinators interoperate without ceremony. v1
// frames every message as a CRC-checked internal/trace record whose
// payload is a field-bitmap + varint binary encoding, with lz block
// compression on bulk payloads and delta encoding on checkpoints.
//
// Version discovery cannot require already knowing the version, so the
// hello exchange always travels as one JSON line per direction: the
// worker offers its maximum version on the hello, the coordinator
// grants min(its own, offered) on the reply, and both sides switch
// codecs at the exact byte position after the reply's newline. An
// absent version field is v0 — which is precisely what an old peer
// sends, and what an unknown (newer-than-known) offer downgrades to.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Protocol versions. The hello exchange negotiates one per connection.
const (
	// V0 is the legacy JSON-lines transport.
	V0 = 0
	// V1 frames messages as CRC-checked trace records with varint
	// fields and lz-compressed/delta-encoded bulk payloads.
	V1 = 1
	// MaxVersion is the newest version this build speaks.
	MaxVersion = V1
)

// Negotiate picks the version a connection speaks from the local
// maximum and the version the peer's hello offered. An offer newer
// than MaxVersion is unknown — it downgrades to v0, the one version
// every peer speaks, and downgraded reports it so the caller can log
// the event (nothing is silently deprecated).
func Negotiate(localMax, offered int) (version int, downgraded bool) {
	if localMax > MaxVersion {
		localMax = MaxVersion
	}
	if localMax < 0 {
		localMax = 0
	}
	if offered <= 0 {
		return V0, false
	}
	if offered > MaxVersion {
		return V0, true
	}
	if offered < localMax {
		return offered, false
	}
	return localMax, false
}

// Payload encodings. EncodingJSON is the only one defined: every bulk
// value dist ships (checkpoints, resume images, system configs) is a
// JSON document underneath, whatever Flags did to it in transit.
const (
	EncodingJSON byte = 0
)

// Payload flags describing what Data is.
const (
	// FlagCompressed: Data is one lz block, [uvarint rawLen][ops].
	FlagCompressed byte = 1 << 0
	// FlagDelta: Data is [base CRC32][out CRC32][uvarint rawLen][ops]
	// with the ops drawing back-references into the receiver's copy of
	// the base document.
	FlagDelta byte = 1 << 1
)

// ErrCorrupt reports a payload whose framing or contents cannot be
// decoded. errors.Is-matchable.
var ErrCorrupt = errors.New("wire: corrupt payload")

// ErrBaseMismatch reports a delta payload encoded against a base the
// receiver does not hold (coordinator restart, lost ack, adopted
// lease). The fix is protocol-level, not an error path: answer
// NeedFull so the sender re-sends a complete image.
var ErrBaseMismatch = errors.New("wire: delta base mismatch")

// Payload is one opaque bulk value crossing the wire — a checkpoint, a
// resume image, a system config. The proto structs carry *Payload so
// compression and delta state travel explicitly instead of being
// implied by which codec happened to frame the message. A nil *Payload
// means "no value", exactly like the empty json.RawMessage it
// replaced.
type Payload struct {
	Encoding byte   // EncodingJSON; what Data is once Flags are undone
	Flags    byte   // FlagCompressed | FlagDelta
	Data     []byte // the bytes that travel
}

// JSONPayload wraps a raw JSON document as a plain (uncompressed,
// non-delta) payload. Empty input returns nil so `p != nil` keeps
// meaning "a value was sent".
func JSONPayload(raw []byte) *Payload {
	if len(raw) == 0 {
		return nil
	}
	return &Payload{Data: raw}
}

// Compress wraps raw as a compressed payload, falling back to plain
// when compression does not pay — tiny or incompressible documents
// would otherwise grow.
func Compress(raw []byte) *Payload {
	if len(raw) == 0 {
		return nil
	}
	data := binary.AppendUvarint(make([]byte, 0, len(raw)/2+8), uint64(len(raw)))
	data = lzEncode(data, nil, raw)
	if len(data) >= len(raw) {
		return &Payload{Data: raw}
	}
	return &Payload{Flags: FlagCompressed, Data: data}
}

// Delta encodes raw against base: the lz ops may back-reference into
// base, so the unchanged bulk of a document that grows by appending —
// a checkpoint whose sample log extends — collapses into a few long
// matches. The 8-byte CRC header lets the receiver verify it holds the
// same base before folding, and the reconstruction afterwards. An
// empty base falls back to Compress.
func Delta(base, raw []byte) *Payload {
	if len(base) == 0 {
		return Compress(raw)
	}
	if len(raw) == 0 {
		return nil
	}
	data := make([]byte, 8, len(raw)/4+16)
	binary.LittleEndian.PutUint32(data[0:4], crc32.ChecksumIEEE(base))
	binary.LittleEndian.PutUint32(data[4:8], crc32.ChecksumIEEE(raw))
	data = binary.AppendUvarint(data, uint64(len(raw)))
	data = lzEncode(data, base, raw)
	return &Payload{Flags: FlagDelta, Data: data}
}

// IsDelta reports whether the payload needs a base to resolve.
func (p *Payload) IsDelta() bool { return p != nil && p.Flags&FlagDelta != 0 }

// WireLen is the byte size that actually travels.
func (p *Payload) WireLen() int {
	if p == nil {
		return 0
	}
	return len(p.Data)
}

// Resolve returns the full raw document. base is consulted only for
// delta payloads; ErrBaseMismatch means the sender encoded against a
// base the receiver does not hold and a full payload must be
// requested.
func (p *Payload) Resolve(base []byte) ([]byte, error) {
	if p == nil {
		return nil, nil
	}
	if p.Encoding != EncodingJSON {
		return nil, fmt.Errorf("wire: unknown payload encoding %d: %w", p.Encoding, ErrCorrupt)
	}
	switch p.Flags {
	case 0:
		return p.Data, nil
	case FlagCompressed:
		rawLen, n := binary.Uvarint(p.Data)
		if n <= 0 {
			return nil, fmt.Errorf("wire: bad compressed length: %w", ErrCorrupt)
		}
		return lzDecode(nil, p.Data[n:], rawLen)
	case FlagDelta:
		if len(p.Data) < 9 {
			return nil, fmt.Errorf("wire: short delta payload: %w", ErrCorrupt)
		}
		baseCRC := binary.LittleEndian.Uint32(p.Data[0:4])
		outCRC := binary.LittleEndian.Uint32(p.Data[4:8])
		if len(base) == 0 || crc32.ChecksumIEEE(base) != baseCRC {
			return nil, ErrBaseMismatch
		}
		rawLen, n := binary.Uvarint(p.Data[8:])
		if n <= 0 {
			return nil, fmt.Errorf("wire: bad delta length: %w", ErrCorrupt)
		}
		out, err := lzDecode(base, p.Data[8+n:], rawLen)
		if err != nil {
			return nil, err
		}
		if crc32.ChecksumIEEE(out) != outCRC {
			return nil, fmt.Errorf("wire: delta output checksum mismatch: %w", ErrCorrupt)
		}
		return out, nil
	}
	return nil, fmt.Errorf("wire: unknown payload flags %#x: %w", p.Flags, ErrCorrupt)
}

// MarshalJSON emits a plain JSON payload verbatim, so on a v0
// JSON-lines connection a checkpoint travels byte-for-byte as it did
// before this package existed and old peers interoperate. A compressed
// or delta payload on a JSON connection is a negotiation bug; it
// refuses to marshal rather than feeding an old peer bytes it would
// misread as a document.
func (p Payload) MarshalJSON() ([]byte, error) {
	if p.Encoding != EncodingJSON || p.Flags != 0 {
		return nil, fmt.Errorf("wire: payload (encoding %d, flags %#x) cannot travel on a JSON connection", p.Encoding, p.Flags)
	}
	if len(p.Data) == 0 {
		return []byte("null"), nil
	}
	return p.Data, nil
}

// UnmarshalJSON captures the raw JSON value — the v0 read path.
func (p *Payload) UnmarshalJSON(b []byte) error {
	p.Encoding, p.Flags = EncodingJSON, 0
	p.Data = append(p.Data[:0:0], b...)
	return nil
}
