package wire

// Codec implementations. A Codec owns one direction-pair of a
// negotiated connection: after the JSON-line hello exchange, both sides
// construct the codec the grant named over the same reader/writer and
// every subsequent message flows through it. Codec selection therefore
// lives in exactly one place (NewCodec) instead of scattered
// json.NewEncoder calls.
//
// v1 framing: every message is one CRC-checked internal/trace record.
// Inside a record:
//
//	[kind byte]              1 = Request, 2 = Response
//	[uvarint field bitmap]   bit i set ⇒ field i follows, in bit order
//	[fields...]
//
// Field encodings: strings and blobs are uvarint length + bytes; ints
// are uvarints; bools occupy no bytes (the bit is the value); payloads
// are [encoding byte][flags byte][uvarint len][data]. The message type
// travels as a small code (bit 0, always set). Job and Spec and WorkLog
// travel as JSON blobs — they are either tiny (Job) or bulk documents
// whose JSON form is the bit-identity contract (WorkLog samples), with
// lz compression applied to the bulk ones when the connection
// negotiated it. Unknown kinds, type codes, or bitmap bits are decode
// errors: v1 is strict, version skew belongs in the hello negotiation,
// not in silently-ignored fields.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"spice/internal/campaign"
	"spice/internal/trace"
)

// Codec frames protocol messages on an established connection. msg is
// *Request or *Response; each side encodes one and decodes the other.
// A codec is safe for one concurrent encoder plus one concurrent
// decoder (the coordinator's reader loop and send-queue writer).
type Codec interface {
	Encode(msg any) error
	Decode(msg any) error
	Version() int
}

// NewCodec returns the codec for a negotiated version. r must be the
// same buffered reader the hello line was read from — bytes it buffered
// past the newline belong to the first framed message. compress enables
// lz blocks on bulk payloads (v1 only; v0 ignores it — JSON lines have
// nowhere to put a flags byte).
func NewCodec(version int, r io.Reader, w io.Writer, compress bool) Codec {
	if version >= V1 {
		return &binaryCodec{
			rr:       trace.NewRecordReader(r),
			rw:       trace.NewRecordWriter(w, false),
			compress: compress,
		}
	}
	return &jsonCodec{enc: json.NewEncoder(w), dec: json.NewDecoder(r)}
}

// jsonCodec is v0: one JSON object per line, exactly the bytes the dist
// package spoke before this package existed.
type jsonCodec struct {
	emu sync.Mutex
	enc *json.Encoder
	dmu sync.Mutex
	dec *json.Decoder
}

func (c *jsonCodec) Encode(msg any) error {
	c.emu.Lock()
	defer c.emu.Unlock()
	return c.enc.Encode(msg)
}

func (c *jsonCodec) Decode(msg any) error {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	return c.dec.Decode(msg)
}

func (c *jsonCodec) Version() int { return V0 }

// Message type codes for v1 frames.
var msgCodes = map[string]uint64{
	MsgHello: 1, MsgNext: 2, MsgBeat: 3, MsgProgress: 4,
	MsgResult: 5, MsgFail: 6, MsgOK: 7, MsgAssign: 8,
	MsgWait: 9, MsgDrained: 10, MsgAbandon: 11, MsgRetry: 12,
}

var msgNames = func() map[uint64]string {
	m := make(map[uint64]string, len(msgCodes))
	for name, code := range msgCodes {
		m[code] = name
	}
	return m
}()

// Frame kinds and field bit assignments. Request and Response each own
// an 11-bit table; bits above these are reserved and reject on decode.
const (
	kindRequest  byte = 1
	kindResponse byte = 2
)

const (
	reqBitType = 1 << iota
	reqBitName
	reqBitSite
	reqBitJobID
	reqBitAttempt
	reqBitCkpt
	reqBitLog
	reqBitErr
	reqBitWire
	reqBitNoDelta
	reqBitNoComp
	reqBitsKnown = reqBitType | reqBitName | reqBitSite | reqBitJobID |
		reqBitAttempt | reqBitCkpt | reqBitLog | reqBitErr |
		reqBitWire | reqBitNoDelta | reqBitNoComp
)

const (
	respBitType = 1 << iota
	respBitJob
	respBitResume
	respBitDelayMs
	respBitSpec
	respBitSystem
	respBitErr
	respBitWire
	respBitDelta
	respBitComp
	respBitNeedFull
	respBitsKnown = respBitType | respBitJob | respBitResume | respBitDelayMs |
		respBitSpec | respBitSystem | respBitErr | respBitWire |
		respBitDelta | respBitComp | respBitNeedFull
)

// binaryCodec is v1: one trace record per message.
type binaryCodec struct {
	emu      sync.Mutex
	rw       *trace.RecordWriter
	buf      []byte
	dmu      sync.Mutex
	rr       *trace.RecordReader
	compress bool
}

func (c *binaryCodec) Version() int { return V1 }

func (c *binaryCodec) Encode(msg any) error {
	c.emu.Lock()
	defer c.emu.Unlock()
	var err error
	switch m := msg.(type) {
	case *Request:
		c.buf, err = appendRequest(c.buf[:0], m, c.compress)
	case *Response:
		c.buf, err = appendResponse(c.buf[:0], m, c.compress)
	default:
		err = fmt.Errorf("wire: cannot encode %T", msg)
	}
	if err != nil {
		return err
	}
	if err := c.rw.Append(c.buf); err != nil {
		return err
	}
	return c.rw.Flush()
}

func (c *binaryCodec) Decode(msg any) error {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	rec, err := c.rr.Next()
	if err != nil {
		return err
	}
	switch m := msg.(type) {
	case *Request:
		return parseRequest(rec, m)
	case *Response:
		return parseResponse(rec, m)
	}
	return fmt.Errorf("wire: cannot decode into %T", msg)
}

func appendRequest(dst []byte, m *Request, compress bool) ([]byte, error) {
	code, ok := msgCodes[m.Type]
	if !ok {
		return nil, fmt.Errorf("wire: unknown message type %q", m.Type)
	}
	var bits uint64 = reqBitType
	if m.Name != "" {
		bits |= reqBitName
	}
	if m.Site != "" {
		bits |= reqBitSite
	}
	if m.JobID != "" {
		bits |= reqBitJobID
	}
	if m.Attempt != 0 {
		bits |= reqBitAttempt
	}
	if m.Ckpt != nil {
		bits |= reqBitCkpt
	}
	if m.Log != nil {
		bits |= reqBitLog
	}
	if m.Err != "" {
		bits |= reqBitErr
	}
	if m.Wire != 0 {
		bits |= reqBitWire
	}
	if m.NoDelta {
		bits |= reqBitNoDelta
	}
	if m.NoComp {
		bits |= reqBitNoComp
	}
	dst = append(dst, kindRequest)
	dst = binary.AppendUvarint(dst, bits)
	dst = binary.AppendUvarint(dst, code)
	dst = appendString(dst, m.Name)
	dst = appendString(dst, m.Site)
	dst = appendString(dst, m.JobID)
	if m.Attempt != 0 {
		dst = binary.AppendUvarint(dst, uint64(m.Attempt))
	}
	dst = appendPayload(dst, m.Ckpt)
	var err error
	if dst, err = appendJSONBlob(dst, m.Log, m.Log != nil, compress); err != nil {
		return nil, err
	}
	dst = appendString(dst, m.Err)
	if m.Wire != 0 {
		dst = binary.AppendUvarint(dst, uint64(m.Wire))
	}
	return dst, nil
}

func parseRequest(rec []byte, m *Request) error {
	*m = Request{}
	d, bits, err := openFrame(rec, kindRequest, reqBitsKnown)
	if err != nil {
		return err
	}
	if m.Type, err = d.msgType(); err != nil {
		return err
	}
	if bits&reqBitName != 0 {
		m.Name, err = d.str()
	}
	if err == nil && bits&reqBitSite != 0 {
		m.Site, err = d.str()
	}
	if err == nil && bits&reqBitJobID != 0 {
		m.JobID, err = d.str()
	}
	if err == nil && bits&reqBitAttempt != 0 {
		m.Attempt, err = d.uint()
	}
	if err == nil && bits&reqBitCkpt != 0 {
		m.Ckpt, err = d.payload()
	}
	if err == nil && bits&reqBitLog != 0 {
		m.Log = &trace.WorkLog{}
		err = d.jsonBlob(m.Log)
	}
	if err == nil && bits&reqBitErr != 0 {
		m.Err, err = d.str()
	}
	if err == nil && bits&reqBitWire != 0 {
		m.Wire, err = d.uint()
	}
	m.NoDelta = bits&reqBitNoDelta != 0
	m.NoComp = bits&reqBitNoComp != 0
	if err != nil {
		return err
	}
	return d.done()
}

func appendResponse(dst []byte, m *Response, compress bool) ([]byte, error) {
	code, ok := msgCodes[m.Type]
	if !ok {
		return nil, fmt.Errorf("wire: unknown message type %q", m.Type)
	}
	var bits uint64 = respBitType
	if m.Job != nil {
		bits |= respBitJob
	}
	if m.Resume != nil {
		bits |= respBitResume
	}
	if m.DelayMs != 0 {
		bits |= respBitDelayMs
	}
	if m.Spec != nil {
		bits |= respBitSpec
	}
	if m.System != nil {
		bits |= respBitSystem
	}
	if m.Err != "" {
		bits |= respBitErr
	}
	if m.Wire != 0 {
		bits |= respBitWire
	}
	if m.Delta {
		bits |= respBitDelta
	}
	if m.Comp {
		bits |= respBitComp
	}
	if m.NeedFull {
		bits |= respBitNeedFull
	}
	dst = append(dst, kindResponse)
	dst = binary.AppendUvarint(dst, bits)
	dst = binary.AppendUvarint(dst, code)
	var err error
	// Job is a few dozen bytes; compressing it would only add overhead.
	if dst, err = appendJSONBlob(dst, m.Job, m.Job != nil, false); err != nil {
		return nil, err
	}
	dst = appendPayload(dst, m.Resume)
	if m.DelayMs != 0 {
		dst = binary.AppendUvarint(dst, uint64(m.DelayMs))
	}
	if dst, err = appendJSONBlob(dst, m.Spec, m.Spec != nil, compress); err != nil {
		return nil, err
	}
	dst = appendPayload(dst, m.System)
	dst = appendString(dst, m.Err)
	if m.Wire != 0 {
		dst = binary.AppendUvarint(dst, uint64(m.Wire))
	}
	return dst, nil
}

func parseResponse(rec []byte, m *Response) error {
	*m = Response{}
	d, bits, err := openFrame(rec, kindResponse, respBitsKnown)
	if err != nil {
		return err
	}
	if m.Type, err = d.msgType(); err != nil {
		return err
	}
	if bits&respBitJob != 0 {
		m.Job = &Job{}
		err = d.jsonBlob(m.Job)
	}
	if err == nil && bits&respBitResume != 0 {
		m.Resume, err = d.payload()
	}
	if err == nil && bits&respBitDelayMs != 0 {
		m.DelayMs, err = d.uint()
	}
	if err == nil && bits&respBitSpec != 0 {
		m.Spec = &campaign.Spec{}
		err = d.jsonBlob(m.Spec)
	}
	if err == nil && bits&respBitSystem != 0 {
		m.System, err = d.payload()
	}
	if err == nil && bits&respBitErr != 0 {
		m.Err, err = d.str()
	}
	if err == nil && bits&respBitWire != 0 {
		m.Wire, err = d.uint()
	}
	m.Delta = bits&respBitDelta != 0
	m.Comp = bits&respBitComp != 0
	m.NeedFull = bits&respBitNeedFull != 0
	if err != nil {
		return err
	}
	return d.done()
}

// appendString writes a uvarint-length-prefixed string; empty strings
// write nothing (their bitmap bit is clear).
func appendString(dst []byte, s string) []byte {
	if s == "" {
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendPayload writes [encoding][flags][uvarint len][data]; nil
// payloads write nothing.
func appendPayload(dst []byte, p *Payload) []byte {
	if p == nil {
		return dst
	}
	dst = append(dst, p.Encoding, p.Flags)
	dst = binary.AppendUvarint(dst, uint64(len(p.Data)))
	return append(dst, p.Data...)
}

// appendJSONBlob marshals v and writes it as a payload-framed blob,
// compressed when the connection negotiated it and it pays.
func appendJSONBlob(dst []byte, v any, present, compress bool) ([]byte, error) {
	if !present {
		return dst, nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	p := JSONPayload(raw)
	if compress {
		p = Compress(raw)
	}
	return appendPayload(dst, p), nil
}

// frameDecoder walks one record's payload with bounds-checked reads.
type frameDecoder struct{ b []byte }

// openFrame validates the kind byte and bitmap and returns a decoder
// positioned at the first field.
func openFrame(rec []byte, kind byte, known uint64) (*frameDecoder, uint64, error) {
	if len(rec) < 2 {
		return nil, 0, fmt.Errorf("wire: short frame: %w", ErrCorrupt)
	}
	if rec[0] != kind {
		return nil, 0, fmt.Errorf("wire: frame kind %d, want %d: %w", rec[0], kind, ErrCorrupt)
	}
	bits, n := binary.Uvarint(rec[1:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("wire: bad field bitmap: %w", ErrCorrupt)
	}
	if bits&^known != 0 {
		return nil, 0, fmt.Errorf("wire: unknown field bits %#x: %w", bits&^known, ErrCorrupt)
	}
	if bits&1 == 0 {
		return nil, 0, fmt.Errorf("wire: frame without message type: %w", ErrCorrupt)
	}
	return &frameDecoder{b: rec[1+n:]}, bits, nil
}

func (d *frameDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad varint: %w", ErrCorrupt)
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *frameDecoder) uint() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > 1<<31 {
		return 0, fmt.Errorf("wire: varint %d out of int range: %w", v, ErrCorrupt)
	}
	return int(v), nil
}

func (d *frameDecoder) msgType() (string, error) {
	code, err := d.uvarint()
	if err != nil {
		return "", err
	}
	name, ok := msgNames[code]
	if !ok {
		return "", fmt.Errorf("wire: unknown message code %d: %w", code, ErrCorrupt)
	}
	return name, nil
}

func (d *frameDecoder) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)) {
		return nil, fmt.Errorf("wire: field length %d exceeds frame: %w", n, ErrCorrupt)
	}
	b := d.b[:n]
	d.b = d.b[n:]
	return b, nil
}

func (d *frameDecoder) str() (string, error) {
	b, err := d.bytes()
	return string(b), err
}

func (d *frameDecoder) payload() (*Payload, error) {
	if len(d.b) < 2 {
		return nil, fmt.Errorf("wire: short payload header: %w", ErrCorrupt)
	}
	enc, flags := d.b[0], d.b[1]
	d.b = d.b[2:]
	data, err := d.bytes()
	if err != nil {
		return nil, err
	}
	// Copy out of the record buffer: payloads outlive the frame (delta
	// bases, spooled checkpoints).
	return &Payload{Encoding: enc, Flags: flags, Data: append([]byte(nil), data...)}, nil
}

func (d *frameDecoder) jsonBlob(v any) error {
	p, err := d.payload()
	if err != nil {
		return err
	}
	raw, err := p.Resolve(nil)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, v)
}

// done rejects trailing bytes — a frame must account for itself.
func (d *frameDecoder) done() error {
	if len(d.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in frame: %w", len(d.b), ErrCorrupt)
	}
	return nil
}
