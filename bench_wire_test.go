package spice

// BenchmarkAblation_WireLoad — the wire-protocol load experiment
// (DESIGN.md §15): one coordinator, a 1000-worker loopback fleet, and a
// checkpoint-heavy synthetic campaign, run once per transport
// generation. The v0 cell speaks the legacy JSON-lines protocol with
// full checkpoint images; the v1 cell negotiates binary framing,
// compression and delta checkpoints. The workers are hand-rolled
// protocol clients (no MD), so the benchmark isolates exactly what the
// transport costs: bytes moved per job, process CPU per work poll
// (coordinator and loopback fleet share one process — the honest total
// cost of coordination), and the ParSPICE-style break-even task size
// below which coordination
// overhead eats the distribution win.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"spice/internal/campaign"
	"spice/internal/dist"
	"spice/internal/trace"
	"spice/internal/wire"
)

// wireLoadCkpts is how many checkpoints each synthetic job streams
// before its result: enough that the steady-state delta path, not the
// one mandatory full image, dominates the per-job byte count.
const wireLoadCkpts = 8

// syntheticCkpt builds the step'th checkpoint document of a job: a
// JSON pull-state lookalike (~4 KiB of positions) where consecutive
// steps differ in a handful of entries — the shape a real SMD
// checkpoint has, where one heartbeat advances a few coordinates and
// counters while the bulk of the document is unchanged.
func syntheticCkpt(seed uint64, step int) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"steps":%d,"seed":%d,"positions":[`, step*100, seed)
	for i := 0; i < 400; i++ {
		v := float64(i%97) * 0.25
		for _, stride := range []int{1, 7, 13} {
			if i == (step*stride)%400 {
				v += float64(step) * 0.001
			}
		}
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "%.6f", v)
	}
	buf.WriteString("]}")
	return buf.Bytes()
}

// wireLoadTotals aggregates the fleet's client-side checkpoint traffic.
type wireLoadTotals struct {
	rawBytes  atomic.Int64 // serialized checkpoint documents
	wireBytes atomic.Int64 // payload bytes after compression/delta
	ckpts     atomic.Int64
}

// wireLoadClient is one synthetic worker: hello, then a poll loop that
// drains jobs, streaming wireLoadCkpts checkpoints per job exactly the
// way internal/dist's worker does — full image first (or after a
// NeedFull), deltas against the last acknowledged base afterwards.
func wireLoadClient(ctx context.Context, addr, name string, offer int, tot *wireLoadTotals) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	hb, err := json.Marshal(&wire.Request{Type: wire.MsgHello, Name: name, Wire: offer})
	if err != nil {
		return err
	}
	if _, err := conn.Write(append(hb, '\n')); err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return err
	}
	var grant wire.Response
	if err := json.Unmarshal(line, &grant); err != nil {
		return err
	}
	codec := wire.NewCodec(grant.Wire, br, conn, grant.Comp)

	rt := func(req *wire.Request) (*wire.Response, error) {
		if err := codec.Encode(req); err != nil {
			return nil, err
		}
		var resp wire.Response
		if err := codec.Decode(&resp); err != nil {
			return nil, err
		}
		return &resp, nil
	}

	for {
		if ctx.Err() != nil {
			return nil
		}
		resp, err := rt(&wire.Request{Type: wire.MsgNext})
		if err != nil {
			// The campaign is done and the coordinator was closed under
			// us — a clean exit, not a failure.
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		switch resp.Type {
		case wire.MsgAssign:
			job := resp.Job
			var base []byte
			for k := 1; k <= wireLoadCkpts; k++ {
				raw := syntheticCkpt(job.Seed, k)
				var p *wire.Payload
				switch {
				case grant.Delta && base != nil:
					p = wire.Delta(base, raw)
				case grant.Comp:
					p = wire.Compress(raw)
				default:
					p = wire.JSONPayload(raw)
				}
				tot.rawBytes.Add(int64(len(raw)))
				tot.wireBytes.Add(int64(p.WireLen()))
				tot.ckpts.Add(1)
				ack, err := rt(&wire.Request{Type: wire.MsgProgress, JobID: job.ID, Attempt: job.Attempt, Ckpt: p})
				if err != nil {
					return err
				}
				switch {
				case ack.NeedFull:
					base = nil
				case ack.Type == wire.MsgOK && ack.Err == "":
					base = raw
				}
			}
			log := &trace.WorkLog{
				Kappa:    job.Combo.KappaPN,
				Velocity: job.Combo.VAns,
				Seed:     job.Seed,
				Samples:  []trace.WorkSample{{Lambda: 1, Z: 1, Work: float64(job.Index)}},
			}
			if _, err := rt(&wire.Request{Type: wire.MsgResult, JobID: job.ID, Attempt: job.Attempt, Log: log}); err != nil {
				return err
			}
		case wire.MsgWait:
			delay := time.Duration(resp.DelayMs) * time.Millisecond
			if delay <= 0 {
				delay = time.Millisecond
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil
			}
		case wire.MsgDrained:
			return nil
		default:
			return fmt.Errorf("unexpected %q to next", resp.Type)
		}
	}
}

// processCPU returns this process's user+system CPU time.
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// runWireLoad executes one fleet-sized campaign and reports the
// transport metrics. v1 selects the binary/delta/compressed transport
// on both ends; otherwise everything speaks legacy JSON lines.
func runWireLoad(b *testing.B, nWorkers int, v1 bool) {
	// 20 κ × 10 v × 5 replicas = 1000 jobs: one per worker on average,
	// so the poll/grant/heartbeat churn — not job compute, there is
	// none — is the entire load.
	spec := campaign.Spec{
		Kappas:     make([]float64, 20),
		Velocities: make([]float64, 10),
		Replicas:   5,
		Distance:   1,
		Seed:       7,
	}
	for i := range spec.Kappas {
		spec.Kappas[i] = float64(10 + i)
	}
	for i := range spec.Velocities {
		spec.Velocities[i] = float64(100 + 10*i)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	co := &dist.Coordinator{
		Listener: ln,
		System:   json.RawMessage(`{"synthetic":true}`),
		LeaseTTL: 30 * time.Second,
	}
	if v1 {
		co.WireVersion = wire.V1
		co.Compression = true
		co.DeltaCheckpoints = true
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		tot     wireLoadTotals
		wg      sync.WaitGroup
		cliErrs = make(chan error, nWorkers)
	)
	offer := 0
	if v1 {
		offer = wire.V1
	}
	cpu0 := processCPU()
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := wireLoadClient(ctx, ln.Addr().String(), fmt.Sprintf("lb-%d", i), offer, &tot); err != nil {
				cliErrs <- err
			}
		}(i)
	}

	start := time.Now()
	if _, err := co.Run(spec); err != nil {
		b.Fatal(err)
	}
	wall := time.Since(start)
	cpu := processCPU() - cpu0
	cancel()
	_ = co.Close()
	wg.Wait()
	select {
	case err := <-cliErrs:
		b.Fatal(err)
	default:
	}

	st := co.Stats()
	jobs := float64(st.Jobs)
	raw, wired := float64(tot.rawBytes.Load()), float64(tot.wireBytes.Load())
	b.ReportMetric(float64(st.BytesIn+st.BytesOut)/jobs, "bytes/job")
	b.ReportMetric(raw/jobs, "ckpt_raw_B/job")
	b.ReportMetric(wired/jobs, "ckpt_wire_B/job")
	if wired > 0 {
		b.ReportMetric(raw/wired, "ckpt_reduction_x")
	}
	if st.WorkPolls > 0 {
		b.ReportMetric(float64(cpu.Microseconds())/float64(st.WorkPolls), "cpu_us/poll")
	}
	cpuPerJob := float64(cpu.Microseconds()) / jobs
	b.ReportMetric(cpuPerJob, "cpu_us/job")
	// ParSPICE-style break-even: with coordination costing cpuPerJob of
	// CPU per task, a task must compute for ≥19× that to keep parallel
	// efficiency above 95% (eff = T/(T+overhead)). Tasks shorter than
	// this are better batched or run locally.
	b.ReportMetric(cpuPerJob*19/1000, "breakeven_ms_95pct")
	b.Logf("wire-load v1=%v: %d workers, %d jobs, %d ckpts in %v (%.0f B/job wire ckpt, %.1fx reduction, %d deltas folded, %d polls)",
		v1, nWorkers, st.Jobs, tot.ckpts.Load(), wall.Round(time.Millisecond),
		wired/jobs, raw/max64(wired, 1), st.DeltasFolded, st.WorkPolls)
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// BenchmarkAblation_WireLoad compares the two transport generations
// under the same 1000-worker loopback fleet. The headline metric is
// ckpt_reduction_x on the v1 cell: raw checkpoint bytes over bytes on
// the wire, which is ≥10× on checkpoint streams with realistic
// step-to-step overlap (scripts/ci.sh gates on it).
func BenchmarkAblation_WireLoad(b *testing.B) {
	const nWorkers = 1000
	for _, tc := range []struct {
		name string
		v1   bool
	}{
		{"v0-json-full", false},
		{"v1-binary-delta", true},
	} {
		b.Run(fmt.Sprintf("%s/workers=%d", tc.name, nWorkers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runWireLoad(b, nWorkers, tc.v1)
			}
		})
	}
}
