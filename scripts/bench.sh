#!/usr/bin/env bash
# Run the benchmark-regression harness from the repo root.
# All flags are forwarded to cmd/bench, e.g.:
#   scripts/bench.sh -out BENCH_2.json -benchtime 1s
#   scripts/bench.sh -out BENCH_5.json -cpu 1,4 -pattern Ablation_BatchStep
set -euo pipefail
cd "$(dirname "$0")/.."
exec go run ./cmd/bench "$@"
