#!/usr/bin/env bash
# CI gate: static checks, full build, race-enabled tests, and a one-shot
# benchmark smoke pass so the ablation benchmarks can never silently rot.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "FAIL: gofmt needed on:"
  echo "$unformatted"
  exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== dist multi-process integration + obs smoke (-race) =="
# Real coordinator + spiced worker processes: one is frozen mid-job so
# its lease expires and the job resumes from a streamed checkpoint on
# another process; the merged PMF must be bit-identical to a local run.
# The observability surface is smoke-checked in the same run: spiced's
# -obs-addr debug server must answer /metrics, /healthz and
# /debug/pprof/, and the coordinator's scraped counters must equal its
# final Stats exactly.
go test -race -run 'TestEndToEndWorkerProcesses' -count=1 -v ./internal/dist

echo "== dist chaos recovery (-race) =="
# Crash-safety e2e: a spice -coordinator -state process is SIGKILLed
# mid-campaign and restarted over the same state directory while one
# worker is partitioned and another retransmits a duplicate result; the
# recovered PMF must be bit-identical and no spooled job may restart
# from step 0.
go test -race -run 'TestChaosCoordinatorKillRecovery' -count=1 -v ./internal/dist

echo "== dist slow-site speculation (-race) =="
# Federation-resilience e2e: one site is throttled ~10x behind a shaped
# (latency + bandwidth-capped) link while healthy workers run free; the
# coordinator must hedge the straggling job onto the healthy site, the
# hedge must win, the slow site's breaker must record the trip, and the
# merged PMF must stay bit-identical to an unhindered run. The test's
# hard timeout doubles as the no-read-blocks-past-deadline check, and
# its obs assertions pin /metrics to the final Stats snapshot and the
# event log's per-name counts to the same numbers.
go test -race -timeout 180s -run 'TestChaosSlowSiteSpeculation' -count=1 -v ./internal/dist

echo "== worker-storm overload chaos (-race) =="
# Overload-robustness e2e: a 500-worker in-process fleet floods the
# coordinator, a netsim blackhole severs every connection at once, and
# the thundering-herd reconnect must land jittered (decorrelated
# per-worker backoff), lose no accepted job, keep the merged PMF
# bit-identical to a LocalRunner baseline, hold every send queue inside
# its configured bound, and drain back to the goroutine baseline after
# Close.
go test -race -timeout 300s -run 'TestChaosWorkerStorm' -count=1 -v ./internal/dist

echo "== overload shedding drills (-race) =="
# Backpressure unit gates. Coordinator: a write-blocked slow consumer is
# evicted on a full send queue while its lease survives for the
# reconnect to adopt; the in-flight cap sheds polls on a lock-free path
# (proved by answering while the coordinator mutex is held); heartbeats
# coalesce under load; idle wait hints scale with fleet size and stay
# jittered. Control plane: a tenant hammering past its token bucket
# gets 429 + Retry-After while another tenant's admitted campaign
# drains, queue-depth admission and the HTTP concurrency limiter shed
# with Retry-After, and the client retries only refusals that carry the
# header, spending its fleet retry budget.
go test -race -count=1 \
  -run 'TestSlowConsumerEvictionAndLeaseReattach|TestInflightShedOverLimit|TestHeartbeatCoalescingUnderLoad|TestAdaptiveWaitHintScalesWithFleet|TestCoordinatorCloseMidCheckpointStream' \
  -v ./internal/dist
go test -race -count=1 \
  -run 'TestTenantRateLimit429Drill|TestMaxQueueDepthAdmission|TestHTTPConcurrencyShed|TestClientRetry|TestCancelRateLimited' \
  -v ./internal/controlplane

echo "== control plane multi-tenant chaos (-race) =="
# Control-plane e2e: a real spiced -serve process takes two tenants'
# campaigns over HTTP (one running, one queued behind -max-active),
# rejects an over-quota submission, and is SIGKILLed twice — mid-queue
# and mid-replay. The restarts must replay every accepted campaign from
# the fsynced queue journal, keep enforcing quotas against the replayed
# queue, and finish both campaigns bit-identical to in-process
# LocalRunner baselines.
go test -race -run 'TestChaosKillControlPlaneMidQueue' -count=1 -v ./internal/controlplane

echo "== disk-fault chaos: compaction kill-points + storage degradation (-race) =="
# Durable-storage gate, both journals. The kill-point sweeps inject a
# fault at EVERY mutating filesystem operation inside compact() and
# require the replayed state (snapshot + log suffix) to be identical —
# for the dist journal that includes the merged PMF inputs bit-for-bit.
# The degradation drills wedge the disk with persistent ENOSPC
# mid-service: the coordinator must answer finished workers with retry
# (never ack-and-drop a result), the control plane must 503 with
# Retry-After (never ack-and-drop a campaign), in-flight work must keep
# draining, and both must recover to ready when the faults clear. The
# bounded-log tests pin that a workload which previously grew the
# journal monotonically now stays near -compact-bytes.
go test -race -count=1 \
  -run 'TestCompactionKillPointSweep|TestJournalReplaySnapshot|TestCoordinatorCompactionBoundedLiveCampaign|TestStorageDegradedRecovery' \
  -v ./internal/dist
go test -race -count=1 \
  -run 'TestQueueCompactionKillPointSweep|TestQueueCompactionBoundsLog|TestQueueSubmitAckOrdering|TestStorageDegradedHTTP503AndRecovery' \
  -v ./internal/controlplane

echo "== control plane quota + torn-tail unit gates (-race) =="
# Two tenants over the in-process HTTP API with quota rejection and
# bit-identity, plus queue-journal recovery at every byte offset of a
# torn final record.
go test -race -run 'TestTwoTenantsOverHTTPBitIdentical|TestQueueTornTailEveryOffset|TestRestartReplaysAcceptedCampaigns' -count=1 ./internal/controlplane

echo "== batch ensemble determinism (GOMAXPROCS=4, -race) =="
# The ensemble batch engine must produce bit-identical trajectories and
# work logs under real parallel stepping: shared static-substrate grid,
# SoA adoption, clone-into-batch restore, and the batched campaign
# runner, all at GOMAXPROCS>1 with the race detector on.
GOMAXPROCS=4 go test -race -count=1 \
  -run 'TestBatch|TestSharedGrid|TestStaticGrid|TestCloneIntoBatchRestore|TestSubstrateShare|TestBatchedRunner' \
  ./internal/md ./internal/neighbor ./internal/campaign

echo "== batch ensemble throughput gate (GOMAXPROCS=4) =="
# Acceptance gate: >=2x aggregate replica-steps/sec over sequential
# per-engine stepping at 8 replicas, with 0 steady-state allocs/op.
# Full multi-CPU numbers live in BENCH_5.json (scripts/bench.sh -cpu 1,4).
GOMAXPROCS=4 go test -run '^$' -bench 'Ablation_BatchStep/replicas=8' -benchtime 20x -benchmem . |
  awk '{ print }
       /replicas=8/ { for (i = 1; i < NF; i++) {
         if ($(i+1) == "speedup_vs_seq") sp = $i
         if ($(i+1) == "allocs/op") al = $i } }
       END {
         if (sp + 0 < 2)  { print "FAIL: batch speedup " sp "x < 2x"; exit 1 }
         if (al + 0 != 0) { print "FAIL: batch allocs/op " al " != 0"; exit 1 }
         print "batch gate OK: " sp "x vs sequential, " al " allocs/op" }'

echo "== wire protocol gates (-race) =="
# Versioned-transport gates. The cross-version matrix (v1 coordinator
# with v0 workers, v0 coordinator with v1 workers, a mixed fleet) must
# merge bit-identical to LocalRunner; a hand-rolled v1 client pins the
# delta NeedFull healing handshake and the fold-before-spool image; and
# delta folds must survive both worker loss and a SIGKILL-shaped
# coordinator crash with journal recovery.
go test -race -count=1 \
  -run 'TestWireMatrixBitIdentical|TestWireV1ClientFoldAndNeedFull|TestDeltaFoldResumeOnWorkerLoss|TestDeltaFoldCrashRestart' \
  -v ./internal/dist

echo "== 1000-worker wire load gate (-race) =="
# Transport acceptance: at 1000 loopback workers the v1 binary/delta
# transport must move >=10x fewer checkpoint bytes per job than the raw
# serialized documents — which is exactly what the v0 JSON baseline
# cell ships 1:1. Full numbers live in BENCH_6.json.
go test -race -run '^$' -bench 'Ablation_WireLoad' -benchtime 1x -timeout 20m . |
  awk '{ print }
       /v1-binary-delta/ { for (i = 1; i < NF; i++)
         if ($(i+1) == "ckpt_reduction_x") rx = $i }
       END {
         if (rx + 0 < 10) { print "FAIL: checkpoint byte reduction " rx "x < 10x"; exit 1 }
         print "wire gate OK: " rx "x checkpoint byte reduction at 1000 workers" }'

echo "== bench smoke (benchtime=1x) =="
go test -run '^$' -bench 'Ablation' -benchtime 1x -benchmem .

echo "CI OK"
