#!/usr/bin/env bash
# CI gate: static checks, full build, race-enabled tests, and a one-shot
# benchmark smoke pass so the ablation benchmarks can never silently rot.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (benchtime=1x) =="
go test -run '^$' -bench 'Ablation' -benchtime 1x -benchmem .

echo "CI OK"
