#!/usr/bin/env bash
# CI gate: static checks, full build, race-enabled tests, and a one-shot
# benchmark smoke pass so the ablation benchmarks can never silently rot.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== dist multi-process integration + obs smoke (-race) =="
# Real coordinator + spiced worker processes: one is frozen mid-job so
# its lease expires and the job resumes from a streamed checkpoint on
# another process; the merged PMF must be bit-identical to a local run.
# The observability surface is smoke-checked in the same run: spiced's
# -obs-addr debug server must answer /metrics, /healthz and
# /debug/pprof/, and the coordinator's scraped counters must equal its
# final Stats exactly.
go test -race -run 'TestEndToEndWorkerProcesses' -count=1 -v ./internal/dist

echo "== dist chaos recovery (-race) =="
# Crash-safety e2e: a spice -coordinator -state process is SIGKILLed
# mid-campaign and restarted over the same state directory while one
# worker is partitioned and another retransmits a duplicate result; the
# recovered PMF must be bit-identical and no spooled job may restart
# from step 0.
go test -race -run 'TestChaosCoordinatorKillRecovery' -count=1 -v ./internal/dist

echo "== dist slow-site speculation (-race) =="
# Federation-resilience e2e: one site is throttled ~10x behind a shaped
# (latency + bandwidth-capped) link while healthy workers run free; the
# coordinator must hedge the straggling job onto the healthy site, the
# hedge must win, the slow site's breaker must record the trip, and the
# merged PMF must stay bit-identical to an unhindered run. The test's
# hard timeout doubles as the no-read-blocks-past-deadline check, and
# its obs assertions pin /metrics to the final Stats snapshot and the
# event log's per-name counts to the same numbers.
go test -race -timeout 180s -run 'TestChaosSlowSiteSpeculation' -count=1 -v ./internal/dist

echo "== bench smoke (benchtime=1x) =="
go test -run '^$' -bench 'Ablation' -benchtime 1x -benchmem .

echo "CI OK"
