// Package spice's top-level benchmarks regenerate every figure and
// quantitative in-text claim of the paper's evaluation. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the series/rows the paper reports (shape, not
// absolute numbers — our substrate is a coarse-grained simulator, not the
// authors' 2005 testbed) and reports headline values as benchmark metrics.
// EXPERIMENTS.md records paper-vs-measured for each.
package spice

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"spice/internal/campaign"
	"spice/internal/core"
	"spice/internal/federation"
	"spice/internal/forcefield"
	"spice/internal/grid"
	"spice/internal/imd"
	"spice/internal/jarzynski"
	"spice/internal/md"
	"spice/internal/netsim"
	"spice/internal/smd"
	"spice/internal/steering"
	"spice/internal/ti"
	"spice/internal/topology"
	"spice/internal/trace"
	"spice/internal/umbrella"
	"spice/internal/units"
	"spice/internal/xrand"

	vecpkg "spice/internal/vec"
)

// ---------------------------------------------------------------------------
// Fig. 1 — the translocation system snapshot.

func BenchmarkFig1_SystemBuild(b *testing.B) {
	var atoms int
	for i := 0; i < b.N; i++ {
		spec := md.DefaultTranslocation(10)
		spec.NoWalls = false
		ts, err := md.BuildTranslocation(spec)
		if err != nil {
			b.Fatal(err)
		}
		atoms = ts.Engine.Topology().N()
	}
	b.ReportMetric(float64(atoms), "atoms")
	// Verify the Fig. 1b geometry: seven-fold symmetric pore.
	p := topology.DefaultPore()
	for k := 1; k < 7; k++ {
		if math.Abs(p.Radius(0, 0.1)-p.Radius(0, 0.1+2*math.Pi*float64(k)/7)) > 1e-9 {
			b.Fatal("pore is not seven-fold symmetric")
		}
	}
	b.Logf("Fig1: CG system with %d atoms; pore R(z): mouth %.1f Å → constriction %.1f Å → barrel %.1f Å",
		atoms, p.VestibuleRadius, p.ConstrictionRadius, p.BarrelRadius)
}

// ---------------------------------------------------------------------------
// Fig. 2 — RealityGrid steering architecture round trip.

func BenchmarkFig2_SteeringRoundTrip(b *testing.B) {
	spec := md.DefaultTranslocation(6)
	ts, err := md.BuildTranslocation(spec)
	if err != nil {
		b.Fatal(err)
	}
	reg := steering.NewRegistry()
	_ = reg.Register(steering.ServiceInfo{Name: "sim", Kind: steering.KindSimulation})
	_ = reg.Register(steering.ServiceInfo{Name: "viz", Kind: steering.KindVisualizer})
	s := steering.NewSteered("sim", ts.Engine)
	st := steering.NewSteerer(s)
	done := make(chan int, 1)
	go func() { done <- s.Run(1 << 30) }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Status(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = st.Stop()
	<-done
}

// ---------------------------------------------------------------------------
// Fig. 3 — strand stretches crossing the constriction.

// BenchmarkFig3_TranslocationStretch threads a strand from above the
// vestibule mouth through the pore and measures, for each backbone bond,
// its mean length while crossing the constriction versus while far above
// it (a paired, per-bond comparison — it cancels the position-along-chain
// tension gradient). Ratio > 1 is the Fig. 3 observation: "the strand of
// DNA stretches as it nears the constriction".
func BenchmarkFig3_TranslocationStretch(b *testing.B) {
	var ratio float64
	var nBonds int
	for i := 0; i < b.N; i++ {
		spec := md.DefaultTranslocation(10)
		spec.Seed = 7
		spec.DNA.StartZ = spec.Pore.VestibuleLength + 4
		spec.DNA.Backbone.Z = 1 // strand starts above the pore, lead enters first
		ts, err := md.BuildTranslocation(spec)
		if err != nil {
			b.Fatal(err)
		}
		ts.Engine.Run(1000)
		p := smd.PaperProtocol(200, 800, ts.DNA[:1])
		p.Distance = 70
		pl, err := smd.Attach(ts.Engine, p)
		if err != nil {
			b.Fatal(err)
		}
		dt := ts.Engine.Timestep()
		nb := len(ts.DNA) - 1
		atC := make([]float64, nb)
		atCn := make([]int, nb)
		far := make([]float64, nb)
		farn := make([]int, nb)
		step := 0
		for pl.Displacement() < p.Distance {
			ts.Engine.Step()
			pl.Advance(dt)
			if step++; step%20 != 0 {
				continue
			}
			st := ts.Engine.State()
			for j := 0; j < nb; j++ {
				a, c := st.Pos[ts.DNA[j]], st.Pos[ts.DNA[j+1]]
				mid := (a.Z + c.Z) / 2
				l := a.Sub(c).Norm()
				switch {
				case mid > -3 && mid < 3:
					atC[j] += l
					atCn[j]++
				case mid > 15:
					far[j] += l
					farn[j]++
				}
			}
		}
		rsum, rn := 0.0, 0
		for j := 1; j < nb; j++ { // skip the bond adjacent to the puller
			if atCn[j] > 3 && farn[j] > 3 {
				rsum += (atC[j] / float64(atCn[j])) / (far[j] / float64(farn[j]))
				rn++
			}
		}
		if rn == 0 {
			b.Fatal("no bonds sampled in both regions")
		}
		ratio, nBonds = rsum/float64(rn), rn
	}
	b.Logf("Fig3: per-bond paired stretch at the constriction: ratio %.4f over %d bonds", ratio, nBonds)
	b.ReportMetric(ratio, "stretch_ratio")
	if ratio <= 1.0 {
		b.Logf("WARNING: expected stretching at the constriction (ratio > 1), got %.4f", ratio)
	}
}

// ---------------------------------------------------------------------------
// Fig. 4 — the (κ, v) parameter optimization. The sweep is expensive, so
// it is computed once and shared by the four panels.

var (
	fig4Once   sync.Once
	fig4Result *core.SweepResult
	fig4Err    error
)

func fig4Sweep() (*core.SweepResult, error) {
	fig4Once.Do(func() {
		cfg := core.PaperSweep()
		cfg.System.Beads = 8
		cfg.System.DT = 0.02
		cfg.Kappas = []float64{10, 100, 1000}
		cfg.Velocities = []float64{12.5, 25, 50, 100}
		cfg.Replicas = 4
		cfg.Distance = 10
		cfg.RefVelocity = 3.125
		cfg.RefKappa = 300
		cfg.RefReplicas = 4
		cfg.Seed = 2005
		fig4Result, fig4Err = core.RunSweep(cfg)
	})
	return fig4Result, fig4Err
}

func fig4Panel(b *testing.B, kappa float64) {
	var res *core.SweepResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = fig4Sweep()
		if err != nil {
			b.Fatal(err)
		}
	}
	curves := res.CurvesForKappa(kappa)
	b.Logf("Fig4 κ=%g pN/Å: PMF vs displacement for v ∈ {12.5, 25, 50, 100} Å/ns", kappa)
	header := "      z(Å)"
	for _, c := range curves {
		header += fmt.Sprintf("   v=%-6g", c.VPaper)
	}
	b.Log(header)
	for g := 0; g < len(res.Grid); g += 4 {
		row := fmt.Sprintf("%10.2f", res.Grid[g])
		for _, c := range curves {
			row += fmt.Sprintf(" %9.3f", c.PMF[g])
		}
		b.Log(row)
	}
	for _, c := range curves {
		b.Logf("  v=%-6g σ_stat=%.3f σ_sys=%.3f (n=%d)", c.VPaper, c.SigmaStat, c.SigmaSys, c.Samples)
	}
	spread, _ := jarzynski.SpreadAcrossVelocities(curves)
	b.ReportMetric(spread, "v_spread_kcal")
}

func BenchmarkFig4a_PMFKappa10(b *testing.B)   { fig4Panel(b, 10) }
func BenchmarkFig4b_PMFKappa100(b *testing.B)  { fig4Panel(b, 100) }
func BenchmarkFig4c_PMFKappa1000(b *testing.B) { fig4Panel(b, 1000) }

func BenchmarkFig4d_PMFByKappa(b *testing.B) {
	var res *core.SweepResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = fig4Sweep()
		if err != nil {
			b.Fatal(err)
		}
	}
	curves := res.CurvesForVelocity(12.5)
	b.Logf("Fig4d v=12.5 Å/ns: PMF for κ ∈ {10, 100, 1000} pN/Å")
	for g := 0; g < len(res.Grid); g += 4 {
		row := fmt.Sprintf("%10.2f", res.Grid[g])
		for _, c := range curves {
			row += fmt.Sprintf(" %9.3f", c.PMF[g])
		}
		b.Log(row)
	}
	b.Logf("optimum selected: κ=%g pN/Å, v=%g Å/ns (paper: κ=100, v=12.5)",
		res.Best.KappaPaper, res.Best.VPaper)
	b.ReportMetric(res.Best.KappaPaper, "kappa_opt")
	b.ReportMetric(res.Best.VPaper, "v_opt")
}

// ---------------------------------------------------------------------------
// Fig. 5 — the federated US-UK grid.

func BenchmarkFig5_FederationBuild(b *testing.B) {
	var procs int
	for i := 0; i < b.N; i++ {
		fed := federation.SPICEFederation()
		procs = fed.TotalProcs()
		// Exercise the cross-site reservation primitive on the
		// TeraGrid sites.
		sites := fed.Sites()[:3]
		if _, err := federation.CoAllocate(sites, []int{256, 256, 256}, 4, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(procs), "total_procs")
	fed := federation.SPICEFederation()
	for _, g := range fed.Grids {
		for _, s := range g.Sites {
			b.Logf("Fig5: %-12s %-12s %4d procs hiddenIP=%-5v lightpath=%v",
				g.Name, s.Name, s.Machine.Procs, s.HiddenIP, s.Lightpath)
		}
	}
}

// ---------------------------------------------------------------------------
// T1 — §I cost model: 1 ns of 300k atoms = 24 h on 128 procs; 10 µs = 3e7
// CPU-hours. Also measures the CG engine's real throughput for scale.

func BenchmarkT1_CostModel(b *testing.B) {
	cm := campaign.PaperCostModel()
	spec := md.DefaultTranslocation(10)
	spec.NoWalls = false
	ts, err := md.BuildTranslocation(spec)
	if err != nil {
		b.Fatal(err)
	}
	ts.Engine.Run(10) // warm the neighbor list
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Engine.Step()
	}
	b.StopTimer()
	nsPerDay := ts.Engine.Timestep() * 1e-3 * float64(b.N) / b.Elapsed().Seconds() * 86400
	b.ReportMetric(nsPerDay, "CG_ns/day")
	b.Logf("T1: paper model — 1 ns of 300k atoms: %.1f h on 128 procs (%.0f CPU-h/ns)", cm.HoursFor(1, 128), cm.CPUHoursPerNs)
	b.Logf("T1: vanilla 10 µs translocation: %.2e CPU-hours (paper: 3×10⁷)", cm.VanillaCPUHours(10))
	b.Logf("T1: this CG substrate: %.1f ns/day single-core — the 300k-atom model is ~%.0ex costlier per step",
		nsPerDay, 300000.0/float64(ts.Engine.Topology().N()))
}

// ---------------------------------------------------------------------------
// T2 — §II: SMD-JE reduces the net requirement by 50-100x.

func BenchmarkT2_SMDJEReduction(b *testing.B) {
	cm := campaign.PaperCostModel()
	var factor float64
	for i := 0; i < b.N; i++ {
		vanilla := cm.VanillaCPUHours(10) // the 10 µs brute-force run
		spec := campaign.PaperSpec()
		sweepCost := 0.0
		for _, j := range spec.Jobs(cm) {
			sweepCost += j.CPUHours()
		}
		// Full SMD-JE budget: the priming/interactive phase (the paper's
		// IMD runs: order 256 procs × a few days), the 72-job parameter
		// sweep, and the production set at the optimum (the remaining
		// sub-trajectories along the full pore axis at v=12.5 with more
		// replicas — roughly 3x the priming sweep).
		interactive := 256.0 * 24 * 4
		production := 3 * sweepCost
		total := interactive + sweepCost + production
		factor = vanilla / total
		if i == 0 {
			b.Logf("T2: vanilla %.2e CPU-h; SMD-JE = interactive %.1e + sweep %.1e + production %.1e = %.2e CPU-h",
				vanilla, interactive, sweepCost, production, total)
			b.Logf("T2: reduction factor %.0fx (paper: 50-100x)", factor)
		}
	}
	b.ReportMetric(factor, "reduction_x")
	if factor < 50 || factor > 150 {
		b.Logf("WARNING: reduction factor %.0f outside the paper's 50-100x band", factor)
	}
}

// ---------------------------------------------------------------------------
// T3 — §III: 72 simulations, ~75,000 CPU-hours, < 1 week on the federation.

func BenchmarkT3_Campaign72(b *testing.B) {
	var fedDays, singleDays, cpuHours float64
	var jobs int
	for i := 0; i < b.N; i++ {
		spec := campaign.PaperSpec()
		cm := campaign.PaperCostModel()
		fed := federation.SPICEFederation()
		if err := campaign.BackgroundLoad(fed, 0.4, 24*14, 1); err != nil {
			b.Fatal(err)
		}
		fr, err := campaign.Simulate(fed, spec, cm, true, federation.JobConstraint{NeedsCrossSite: true})
		if err != nil {
			b.Fatal(err)
		}
		single := campaign.SingleSite("local-512", 512)
		if err := campaign.BackgroundLoad(single, 0.4, 24*14, 1); err != nil {
			b.Fatal(err)
		}
		sr, err := campaign.Simulate(single, spec, cm, true, federation.JobConstraint{})
		if err != nil {
			b.Fatal(err)
		}
		fedDays, singleDays = fr.Days(), sr.Days()
		cpuHours = fr.TotalCPUHours
		jobs = len(fr.Placements)
	}
	b.ReportMetric(fedDays, "federation_days")
	b.ReportMetric(singleDays, "single_site_days")
	b.ReportMetric(cpuHours, "cpu_hours")
	b.Logf("T3: %d jobs, %.0f CPU-hours; federation %.2f days (paper: <7), single 512p site %.2f days (%.1fx)",
		jobs, cpuHours, fedDays, singleDays, singleDays/fedDays)
}

// ---------------------------------------------------------------------------
// T4 — §II-III: IMD interactivity vs network QoS at production scale.

func BenchmarkT4_IMDQoS(b *testing.B) {
	var rows []string
	var congestedSlowdown, lightpathSlowdown float64
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, p := range netsim.Profiles() {
			m := imd.SimulateSession(imd.ModelConfig{
				ComputePerFrame: imd.PaperComputePerFrame(256, 20),
				RenderTime:      33 * time.Millisecond,
				NAtoms:          300000,
				Frames:          200,
				Profile:         p,
				Sync:            true,
				Seed:            4,
			})
			rows = append(rows, fmt.Sprintf("T4: %-12s stall %5.1f%%  slowdown %5.2fx  %.3f frames/s",
				p.Name, 100*m.StallFraction, m.Slowdown, m.FPS))
			switch p.Name {
			case "congested":
				congestedSlowdown = m.Slowdown
			case "lightpath":
				lightpathSlowdown = m.Slowdown
			}
		}
	}
	for _, r := range rows {
		b.Log(r)
	}
	for _, p := range netsim.Profiles() {
		b.Logf("T4: %-12s sustainable TCP throughput (Mathis): %.1f Mb/s", p.Name, p.TCPThroughputMbps(1460))
	}
	b.Logf("T4: 256-proc interactive run stalls %.1fx worse on the general-purpose path than the lightpath",
		congestedSlowdown/lightpathSlowdown)
	b.ReportMetric(lightpathSlowdown, "lightpath_slowdown")
	b.ReportMetric(congestedSlowdown, "congested_slowdown")
}

// ---------------------------------------------------------------------------
// T5 — §V.C.1: hidden-IP sites, gateway relays and their bottleneck.

func BenchmarkT5_HiddenIPGateway(b *testing.B) {
	fed := federation.SPICEFederation()
	var psc, hpcx *federation.Site
	for _, s := range fed.Sites() {
		switch s.Name {
		case "PSC":
			psc = s
		case "HPCx":
			hpcx = s
		}
	}
	var agg float64
	for i := 0; i < b.N; i++ {
		// Direct cross-site traffic fails at pure hidden-IP sites.
		if hpcx.SupportsCrossSite() {
			b.Fatal("HPCx should not support cross-site jobs")
		}
		// PSC relays through gateways; aggregate bandwidth caps out.
		var ok bool
		agg, ok = psc.RelayBandwidth()
		if !ok {
			b.Fatal("PSC should be relayed")
		}
	}
	// Throughput of an N-stream MPICH-G2-style exchange through the
	// gateways: each direct stream could carry 1 Gb/s, the relay path
	// shares k gateways.
	const perStreamMbps = 1000.0
	b.Logf("T5: %-28s %10s %12s", "path", "streams", "agg Mb/s")
	for _, streams := range []int{1, 4, 16, 64} {
		direct := perStreamMbps * float64(streams)
		relayed := math.Min(direct, agg)
		b.Logf("T5: direct (visible IPs)        %10d %12.0f", streams, direct)
		b.Logf("T5: via %d gateways (qsocket)    %10d %12.0f%s", psc.Gateways, streams, relayed,
			map[bool]string{true: "  <- bottleneck", false: ""}[relayed < direct])
	}
	b.Logf("T5: UDP through the relay: unsupported (constraint excludes relayed sites)")
	udp := federation.JobConstraint{NeedsCrossSite: true, NeedsUDP: true}
	if udp.Eligible(psc) {
		b.Fatal("UDP constraint should exclude PSC")
	}
	b.ReportMetric(agg, "gateway_agg_mbps")
}

// ---------------------------------------------------------------------------
// T6 — §V.C.3/5: reservation workflows — manual vs web vs automated.

func BenchmarkT6_CoScheduling(b *testing.B) {
	const requests = 200
	var manualErrs, webErrs, autoErrs float64
	for i := 0; i < b.N; i++ {
		rng := xrand.New(2005)
		m := federation.CampaignReservationCost(federation.Manual, requests, rng)
		w := federation.CampaignReservationCost(federation.WebInterface, requests, rng)
		a := federation.CampaignReservationCost(federation.Automated, requests, rng)
		manualErrs = float64(m.Errors) / requests
		webErrs = float64(w.Errors) / requests
		autoErrs = float64(a.Errors) / requests
		if i == 0 {
			b.Logf("T6: %-10s %10s %10s %12s %14s", "workflow", "errors/req", "emails/req", "delay h/req", "interventions")
			for _, row := range []struct {
				name string
				o    federation.ReservationOutcome
			}{{"manual", m}, {"web", w}, {"automated", a}} {
				b.Logf("T6: %-10s %10.2f %10.1f %12.1f %14.2f", row.name,
					float64(row.o.Errors)/requests, float64(row.o.Emails)/requests,
					row.o.DelayHours/requests, float64(row.o.Interventions)/requests)
			}
			b.Logf("T6: paper anecdote: ~3 errors, ~12 emails for one manual request")
		}
	}
	b.ReportMetric(manualErrs, "manual_errors_per_req")
	b.ReportMetric(webErrs, "web_errors_per_req")
	b.ReportMetric(autoErrs, "auto_errors_per_req")
}

// ---------------------------------------------------------------------------
// T7 — §V.C.4: failure resilience; the security breach scenario.

func BenchmarkT7_FailureResilience(b *testing.B) {
	spec := campaign.PaperSpec()
	cm := campaign.PaperCostModel()
	scenario := func(outage bool, ukOnly bool) (float64, error) {
		fed := federation.SPICEFederation()
		if ukOnly {
			fed.Grids = fed.Grids[1:]
		}
		if err := campaign.BackgroundLoad(fed, 0.4, 24*14, 1); err != nil {
			return 0, err
		}
		if outage {
			fed.Apply([]federation.Outage{federation.SecurityBreach("Manchester", 24)})
		}
		r, err := campaign.Simulate(fed, spec, cm, true, federation.JobConstraint{NeedsCrossSite: true})
		if err != nil {
			return 0, err
		}
		return r.Days(), nil
	}
	var healthy, breached, ukBreached float64
	for i := 0; i < b.N; i++ {
		var err error
		if healthy, err = scenario(false, false); err != nil {
			b.Fatal(err)
		}
		if breached, err = scenario(true, false); err != nil {
			b.Fatal(err)
		}
		ukBreached, err = scenario(true, true)
		if err != nil {
			ukBreached = math.Inf(1) // campaign impossible on NGS alone
		}
	}
	// Job-level failures (hardware flakiness) on top of the healthy
	// loaded federation: 10% of jobs die mid-run and resubmit elsewhere.
	flakyFed := federation.SPICEFederation()
	if err := campaign.BackgroundLoad(flakyFed, 0.4, 24*14, 1); err != nil {
		b.Fatal(err)
	}
	flaky, err := campaign.SimulateWithFailures(flakyFed, spec, cm,
		campaign.FailureModel{PFail: 0.1, ExcludeFailedMachine: true, Seed: 2005},
		federation.JobConstraint{NeedsCrossSite: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("T7: healthy federation %.2f days; +breach %.2f days; UK NGS alone +breach %.2f days",
		healthy, breached, ukBreached)
	b.Logf("T7: +10%% job failures: %.2f days, %d failures, %.0f CPU-h wasted — absorbed by resubmission",
		flaky.Days(), flaky.Failures, flaky.WastedCPUHours)
	b.Logf("T7: redundancy across the federation absorbs the 3-week quarantine; a single grid cannot")
	b.ReportMetric(healthy, "healthy_days")
	b.ReportMetric(breached, "breach_days")
	b.ReportMetric(flaky.Days(), "flaky_days")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4).

// BenchmarkAblation_Estimators compares the JE estimators' bias on a
// synthetic Gaussian work ensemble where the true ΔF is known.
func BenchmarkAblation_Estimators(b *testing.B) {
	var biasExp, biasC1, biasC2 float64
	for i := 0; i < b.N; i++ {
		rng := xrand.New(9)
		const n, sd = 32, 1.0
		const mu = 3.0
		beta := 1.0 / 0.5961
		truth := mu - beta*sd*sd/2
		est := func(e jarzynski.Estimator) float64 {
			// Average bias over many independent n-sample ensembles.
			total := 0.0
			const trials = 300
			for t := 0; t < trials; t++ {
				ws := make([]float64, n)
				for k := range ws {
					ws[k] = mu + sd*rng.NormFloat64()
				}
				ens := &jarzynski.Ensemble{Temp: 300, Grid: []float64{0, 1}, Work: make([][]float64, n)}
				for k := range ws {
					ens.Work[k] = []float64{0, ws[k]}
				}
				pmf, err := ens.PMF(e)
				if err != nil {
					b.Fatal(err)
				}
				total += pmf[1] - truth
			}
			return total / trials
		}
		biasExp = est(jarzynski.Exponential)
		biasC1 = est(jarzynski.Cumulant1)
		biasC2 = est(jarzynski.Cumulant2)
	}
	b.Logf("Ablation/estimators (n=32 Gaussian work, true ΔF known): bias exp=%+.3f c1=%+.3f c2=%+.3f kcal/mol",
		biasExp, biasC1, biasC2)
	b.ReportMetric(biasExp, "bias_exponential")
	b.ReportMetric(biasC2, "bias_cumulant2")
}

// BenchmarkAblation_SubTrajectoryLength probes §V.A: does the PMF depend
// on how the 40 Å pull is segmented?
func BenchmarkAblation_SubTrajectoryLength(b *testing.B) {
	runSegmented := func(segLen float64) []float64 {
		total := 40.0
		nseg := int(total / segLen)
		var segs [][]float64
		var grids [][]float64
		var offsets []float64
		for s := 0; s < nseg; s++ {
			// Synthetic landscape: each segment's PMF is the true
			// profile slice plus noise that grows with segment length
			// (statistical error accumulates along a pull).
			rng := xrand.New(uint64(1000 + s))
			pts := int(segLen/0.5) + 1
			grid := make([]float64, pts)
			pmf := make([]float64, pts)
			for i := range grid {
				grid[i] = float64(i) * 0.5
				z := offsetsAt(s, segLen) + grid[i]
				pmf[i] = truePMF(z) - truePMF(offsetsAt(s, segLen)) +
					rng.NormFloat64()*0.02*grid[i] // error grows with distance from the segment start
			}
			segs = append(segs, pmf)
			grids = append(grids, grid)
			offsets = append(offsets, offsetsAt(s, segLen))
		}
		_, stitched, err := jarzynski.Stitch(segs, grids, offsets)
		if err != nil {
			b.Fatal(err)
		}
		return stitched
	}
	var rows []string
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, segLen := range []float64{5, 10, 20, 40} {
			stitched := runSegmented(segLen)
			// Error against the true profile at the stitched points.
			rmsd := 0.0
			n := 0
			pos := 0.0
			for _, v := range stitched {
				d := v - truePMF(pos)
				rmsd += d * d
				n++
				pos += 0.5
				if pos > 40 {
					break
				}
			}
			rmsd = math.Sqrt(rmsd / float64(n))
			rows = append(rows, fmt.Sprintf("Ablation/subtrajectory: segment %4.0f Å -> stitched PMF RMSD %.3f kcal/mol", segLen, rmsd))
		}
	}
	for _, r := range rows {
		b.Log(r)
	}
	b.Log("Ablation/subtrajectory: shorter segments bound the per-segment error growth (paper §V.A picks 10 Å)")
}

func offsetsAt(s int, segLen float64) float64 { return float64(s) * segLen }

func truePMF(z float64) float64 {
	// A smooth two-well profile over [0, 40].
	return 2*math.Sin(z/6) - 1.5*math.Exp(-(z-20)*(z-20)/18)
}

// BenchmarkAblation_ParallelForces sweeps the force-evaluation worker
// count on a dense periodic melt — the nonbonded-dominated regime the
// worker pool targets (the translocation systems are too small for the
// parallel path to pay; the engine's pair-count threshold keeps them on
// the serial path).
func BenchmarkAblation_ParallelForces(b *testing.B) {
	b.Logf("Ablation/parallel: GOMAXPROCS=%d — on a single-core host the sweep is flat by construction; "+
		"worker-pool correctness is asserted in internal/md TestParallelForcesMatchSerial", runtime.GOMAXPROCS(0))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng, err := denseMelt(14, workers)
			if err != nil {
				b.Fatal(err)
			}
			eng.Run(20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
			b.StopTimer()
			// Pair-evaluation throughput: the worker pool's figure of
			// merit (each step evaluates every listed pair once).
			st := eng.NeighborStats()
			b.ReportMetric(st.AvgPairs*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// denseMelt builds side³ charged beads on a cubic lattice in a periodic
// box at liquid-like density (~60 neighbors per bead within the
// electrostatic cutoff, ~10⁵ pairs), so the pair evaluation dominates the
// step and the worker pool has something to chew on.
func denseMelt(side, workers int) (*md.Engine, error) {
	top := topology.New()
	spacing := 4.3
	box := spacing * float64(side)
	pos := make([]vecpkg.V, 0, side*side*side)
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			for z := 0; z < side; z++ {
				top.AddAtom(topology.Atom{Kind: topology.KindIon, Mass: 100, Charge: -0.2, Radius: 1.5})
				pos = append(pos, vecpkg.V{
					X: (float64(x) + 0.5) * spacing,
					Y: (float64(y) + 0.5) * spacing,
					Z: (float64(z) + 0.5) * spacing,
				})
			}
		}
	}
	return md.New(md.Config{
		Top:  top,
		Init: pos,
		Pair: forcefield.Combined{
			Core: forcefield.WCA{Epsilon: 0.3, MaxCut: 10},
			Elec: forcefield.DebyeHuckel{Lambda: 7.9, EpsR: 78.5, Cut: 10},
		},
		Box:     vecpkg.V{X: box, Y: box, Z: box},
		Seed:    9,
		Workers: workers,
	})
}

// BenchmarkAblation_Backfill compares plain FCFS against conservative
// backfill on the production campaign.
func BenchmarkAblation_Backfill(b *testing.B) {
	spec := campaign.PaperSpec()
	cm := campaign.PaperCostModel()
	var fcfs, backfill float64
	for i := 0; i < b.N; i++ {
		for _, bf := range []bool{false, true} {
			fed := federation.SPICEFederation()
			if err := campaign.BackgroundLoad(fed, 0.4, 24*14, 1); err != nil {
				b.Fatal(err)
			}
			r, err := campaign.Simulate(fed, spec, cm, bf, federation.JobConstraint{NeedsCrossSite: true})
			if err != nil {
				b.Fatal(err)
			}
			if bf {
				backfill = r.Days()
			} else {
				fcfs = r.Days()
			}
		}
	}
	b.Logf("Ablation/backfill: FCFS %.2f days vs conservative backfill %.2f days", fcfs, backfill)
	b.ReportMetric(fcfs, "fcfs_days")
	b.ReportMetric(backfill, "backfill_days")
}

// BenchmarkAblation_NeighborList measures the cell list against the O(N²)
// reference on the wall-bead system (see also internal/neighbor's
// micro-benchmarks).
func BenchmarkAblation_NeighborList(b *testing.B) {
	spec := md.DefaultTranslocation(20)
	spec.NoWalls = false
	ts, err := md.BuildTranslocation(spec)
	if err != nil {
		b.Fatal(err)
	}
	n := ts.Engine.Topology().N()
	b.Run(fmt.Sprintf("cell-list/N=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ts.Engine.Step()
		}
		// Rebuild cadence and pair volume: a skin-tuning regression
		// (too-small skin -> rebuild every step; too-large -> pair
		// list bloat) shows up directly in these two metrics.
		st := ts.Engine.NeighborStats()
		b.ReportMetric(st.AvgInterval, "steps/rebuild")
		b.ReportMetric(st.AvgPairs, "pairs/rebuild")
	})
	b.Logf("Ablation/neighbor: see internal/neighbor BenchmarkCellList1000 vs BenchmarkBruteForce1000")
}

// batchBenchSpec is the wall-heavy substrate-eligible system the batch
// engine targets: explicit pore walls plus a dense membrane bead lattice
// (~3,400 fixed atoms) around a short mobile strand, fully periodic — the
// regime where per-replica static work dominates a step.
func batchBenchSpec(seed uint64) md.TranslocationSpec {
	spec := md.DefaultTranslocation(4)
	spec.NoWalls = false
	spec.Seed = seed
	spec.Workers = 1
	spec.Membrane.BeadSpacing = 3
	spec.Membrane.HalfWidth = 60
	spec.Box = vecpkg.V{X: 160, Y: 160, Z: 170}
	return spec
}

// BenchmarkAblation_BatchStep measures aggregate ensemble throughput
// (DESIGN.md §11): N replicas stepped through one md.Batch — shared
// static-substrate neighbor grid, SoA state arrays, one step-worker pool
// — versus the same N identically seeded engines stepped sequentially on
// the plain per-engine path. Run at GOMAXPROCS>1 via scripts/bench.sh
// -cpu 1,4; the acceptance gate (scripts/ci.sh) is ≥2× aggregate
// replica-steps/sec at 8 replicas with 0 steady-state allocs/op.
func BenchmarkAblation_BatchStep(b *testing.B) {
	for _, replicas := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			build := func() []*md.Engine {
				engines := make([]*md.Engine, replicas)
				for r := range engines {
					ts, err := md.BuildTranslocation(batchBenchSpec(uint64(r) + 1))
					if err != nil {
						b.Fatal(err)
					}
					ts.Engine.Run(30) // settle and warm the neighbor list
					engines[r] = ts.Engine
				}
				return engines
			}

			// Sequential per-engine baseline, timed outside the benchmark
			// clock so ns/op and allocs/op describe only the batch path.
			seq := build()
			const seqSweeps = 30
			t0 := time.Now()
			for s := 0; s < seqSweeps; s++ {
				for _, e := range seq {
					e.Step()
				}
			}
			seqPerReplicaStep := time.Since(t0).Seconds() / float64(seqSweeps*replicas)

			bt, err := md.NewBatch(build(), md.BatchConfig{})
			if err != nil {
				b.Fatal(err)
			}
			defer bt.Close()
			if !bt.SubstrateShared() {
				b.Fatal("bench system must be substrate-eligible")
			}
			bt.StepN(seqSweeps) // steady state: wrap scratch, chunk buffers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bt.Step()
			}
			b.StopTimer()

			batchPerReplicaStep := b.Elapsed().Seconds() / float64(b.N*replicas)
			pairs := 0.0
			for r := 0; r < bt.Len(); r++ {
				pairs += bt.Engine(r).NeighborStats().AvgPairs
			}
			b.ReportMetric(float64(b.N*replicas)/b.Elapsed().Seconds(), "replica_steps/s")
			b.ReportMetric(pairs*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
			b.ReportMetric(seqPerReplicaStep/batchPerReplicaStep, "speedup_vs_seq")
		})
	}
}

// ---------------------------------------------------------------------------
// Guard: the T2/T3 inputs stay pinned to the paper's numbers.

func TestPaperConstantsPinned(t *testing.T) {
	spec := campaign.PaperSpec()
	cm := campaign.PaperCostModel()
	jobs := spec.Jobs(cm)
	if len(jobs) != 72 {
		t.Fatalf("campaign is %d jobs, the paper ran 72", len(jobs))
	}
	total := 0.0
	for _, j := range jobs {
		total += j.CPUHours()
	}
	if total < 40000 || total > 120000 {
		t.Fatalf("campaign CPU-hours %.0f too far from the paper's ~75,000", total)
	}
	if grid.Makespan(nil) != 0 {
		t.Fatal("sanity")
	}
}

// ---------------------------------------------------------------------------
// Extension (paper §VI): thermodynamic integration on the same
// infrastructure — compared against SMD-JE at a similar step budget.

func BenchmarkExtension_TIvsSMDJE(b *testing.B) {
	wellBuild := func(_ int, seed uint64) (*md.Engine, []int, error) {
		top := topology.New()
		top.AddAtom(topology.Atom{Kind: topology.KindDNA, Mass: 325, Radius: 3})
		well := &forcefield.BindingSites{
			Sites: []forcefield.BindingSite{{Z: 5, Depth: 1.5, Width: 1.5}},
			Atoms: []int{0},
		}
		eng, err := md.New(md.Config{
			Top:   top,
			Init:  []vecpkg.V{{}},
			Terms: []forcefield.Term{well},
			Seed:  seed,
			DT:    0.02,
		})
		return eng, []int{0}, err
	}
	truth := func(z float64) float64 {
		return -1.5 * math.Exp(-(z-5)*(z-5)/(2*1.5*1.5))
	}
	// Offset-free RMSD: PMFs have an arbitrary zero, so compare after
	// removing the mean difference (fair to all three methods).
	rmsdVs := func(grid, pmf []float64) float64 {
		diff := make([]float64, len(grid))
		meanD := 0.0
		for i, z := range grid {
			diff[i] = pmf[i] - truth(z)
			meanD += diff[i]
		}
		meanD /= float64(len(grid))
		s := 0.0
		for _, d := range diff {
			d -= meanD
			s += d * d
		}
		return math.Sqrt(s / float64(len(grid)))
	}

	var tiRMSD, jeRMSD float64
	for i := 0; i < b.N; i++ {
		// TI: 21 windows × 14k steps = 294k steps.
		tiRes, err := ti.Run(ti.Config{
			Build: wellBuild, Kappa: units.SpringFromPaper(300), Axis: vecpkg.V{Z: 1},
			Start: 0, Distance: 10, Windows: 21,
			EquilSteps: 2000, SampleSteps: 12000, SampleEvery: 5,
			Workers: 4, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		tiRMSD = rmsdVs(tiRes.Grid, tiRes.PMF)

		// SMD-JE: 12 pulls at v=25 Å/ns over 10 Å = 12 × 20k = 240k steps.
		var logs []*trace.WorkLog
		for r := 0; r < 12; r++ {
			eng, atoms, err := wellBuild(0, uint64(900+r))
			if err != nil {
				b.Fatal(err)
			}
			p := smd.PaperProtocol(300, 25, atoms)
			p.Axis = vecpkg.V{Z: 1}
			pl, err := smd.Attach(eng, p)
			if err != nil {
				b.Fatal(err)
			}
			res, err := pl.Run(eng, p, uint64(900+r))
			if err != nil {
				b.Fatal(err)
			}
			logs = append(logs, res.Log)
		}
		ens, err := jarzynski.NewEnsemble(300, logs)
		if err != nil {
			b.Fatal(err)
		}
		pmf, err := ens.PMF(jarzynski.Cumulant2)
		if err != nil {
			b.Fatal(err)
		}
		jeRMSD = rmsdVs(ens.Grid, pmf)
	}

	// Umbrella sampling + WHAM: 11 windows × 22k steps = 242k steps.
	var whamRMSD float64
	for i := 0; i < b.N; i++ {
		res, err := umbrella.Run(umbrella.Config{
			Build: wellBuild, Kappa: units.SpringFromPaper(50), Axis: vecpkg.V{Z: 1},
			Start: 0, Distance: 10, Windows: 11,
			EquilSteps: 2000, SampleSteps: 20000, SampleEvery: 5,
			Temp: 300, Workers: 4, Seed: 17,
		}, 30)
		if err != nil {
			b.Fatal(err)
		}
		var grid, pmf []float64
		for bn, x := range res.Grid {
			if !math.IsInf(res.PMF[bn], 1) {
				grid = append(grid, x)
				pmf = append(pmf, res.PMF[bn])
			}
		}
		whamRMSD = rmsdVs(grid, pmf)
	}
	b.Logf("Extension/free-energy methods, same infrastructure, similar budgets (~0.25M steps each):")
	b.Logf("  SMD-JE (cumulant2)   RMSD %.3f kcal/mol", jeRMSD)
	b.Logf("  TI (stiff-spring)    RMSD %.3f kcal/mol", tiRMSD)
	b.Logf("  Umbrella + WHAM      RMSD %.3f kcal/mol", whamRMSD)
	b.ReportMetric(tiRMSD, "ti_rmsd")
	b.ReportMetric(jeRMSD, "smdje_rmsd")
	b.ReportMetric(whamRMSD, "wham_rmsd")
}

// ---------------------------------------------------------------------------
// Extension (paper §V.C.6): co-scheduling lightpaths with compute — the
// coordination problem the paper leaves open, implemented as a
// circuit-calendar co-scheduler.

func BenchmarkExtension_LightpathCoScheduling(b *testing.B) {
	var ucl2ncsa float64
	var sessions int
	for i := 0; i < b.N; i++ {
		fed := federation.SPICEFederation()
		fab := federation.SPICEFabric()
		var ncsa *federation.Site
		for _, s := range fed.Sites() {
			if s.Name == "NCSA" {
				ncsa = s
			}
		}
		// A week of daily 4-hour interactive sessions, all needing the
		// UCL-NCSA circuit and 256 processors simultaneously.
		sessions = 0
		for d := 0; d < 7; d++ {
			for k := 0; k < 3; k++ {
				if _, err := federation.CoScheduleInteractive(fab, ncsa, "UCL", 256, 4, float64(d*24)); err != nil {
					b.Fatal(err)
				}
				sessions++
			}
		}
		link, _ := fab.Find("UCL", "NCSA")
		ucl2ncsa = link.CircuitUtilization(7 * 24)
	}
	b.Logf("Extension/lightpath: %d sessions co-scheduled; UCL-NCSA circuit utilization %.0f%% over the week",
		sessions, 100*ucl2ncsa)
	b.ReportMetric(ucl2ncsa, "circuit_utilization")
}
