module spice

go 1.22
