// Command bench is the benchmark-regression harness: it runs the key
// ablation and figure benchmarks through `go test -bench -benchmem`,
// parses the standard benchmark output (including custom metrics like
// pairs/s and steps/rebuild), and writes a machine-readable JSON snapshot
// so successive PRs have a performance trajectory to compare against.
//
// Usage:
//
//	go run ./cmd/bench                    # writes BENCH_1.json
//	go run ./cmd/bench -out BENCH_2.json  # next PR's snapshot
//	go run ./cmd/bench -benchtime 500ms -pattern 'Ablation'
//
// Compare two snapshots by eye or with jq; every record carries ns/op,
// B/op, allocs/op and all custom metrics keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op"`
	AllocsNum  float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the file format of BENCH_N.json.
type Snapshot struct {
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	CPUs       int       `json:"num_cpu"`
	BenchTime  string    `json:"benchtime"`
	Pattern    string    `json:"pattern"`
	CPUList    string    `json:"cpu_list,omitempty"`
	Timestamp  time.Time `json:"timestamp"`
	Results    []Result  `json:"results"`
}

const defaultPattern = "Ablation_ParallelForces|Ablation_NeighborList|Fig3_TranslocationStretch|T3_Campaign72"

func main() {
	out := flag.String("out", "BENCH_1.json", "output JSON path")
	pattern := flag.String("pattern", defaultPattern, "benchmark regexp passed to -bench")
	benchtime := flag.String("benchtime", "300ms", "passed to -benchtime")
	cpu := flag.String("cpu", "", "GOMAXPROCS list passed to go test -cpu, e.g. 1,4; benchmarks at 1 keep their unsuffixed regression keys, other values add \"-N\"-suffixed rows")
	dir := flag.String("dir", ".", "module directory containing the top-level benchmarks")
	flag.Parse()

	args := []string{"test", "-run", "^$",
		"-bench", *pattern, "-benchmem", "-benchtime", *benchtime}
	if *cpu != "" {
		args = append(args, "-cpu", *cpu)
	}
	cmd := exec.Command("go", append(args, ".")...)
	cmd.Dir = *dir
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}

	var results []Result
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // keep the human-readable stream visible
		if r, ok := parseBenchLine(line); ok {
			results = append(results, r)
		}
	}
	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("go test -bench failed: %w", err))
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines matched pattern %q", *pattern))
	}

	snap := Snapshot{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		BenchTime:  *benchtime,
		Pattern:    *pattern,
		CPUList:    *cpu,
		Timestamp:  time.Now().UTC(),
		Results:    results,
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(results), *out)
}

// parseBenchLine parses one `go test -bench` output line, e.g.
//
//	BenchmarkX/sub-8   123   4567 ns/op   12 B/op   0 allocs/op   9.9 pairs/s
//
// Fields after the iteration count come in (value, unit) tuples.
func parseBenchLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:       strings.TrimPrefix(fields[0], "Benchmark"),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for k := 2; k+1 < len(fields); k += 2 {
		val, err := strconv.ParseFloat(fields[k], 64)
		if err != nil {
			continue
		}
		switch unit := fields[k+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsNum = val
		default:
			r.Metrics[unit] = val
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
