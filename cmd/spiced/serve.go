package main

// spiced -serve: the control-plane mode. Instead of pulling jobs as a
// worker, the daemon becomes the long-lived service the fleet gathers
// around: it embeds a dist coordinator, wraps it in the multi-tenant
// campaign control plane (persistent queue, quotas, fair-share
// scheduling), and serves the HTTP API on one listener together with
// /metrics, /healthz and /readyz. /readyz goes ready only after the
// queue journal has been replayed.
//
// Example — a control plane with two in-process workers and quotas:
//
//	spiced -serve -listen :9555 -http :9556 -state /var/lib/spice \
//	       -workers 2 -max-active 2 -quotas 'alice=4:2,bob=2:1'
//	spice -server :9556 -submit -tenant alice -kappas 100 -wait
//
// External spiced workers join the embedded coordinator as usual:
//
//	spiced -coordinator host:9555 -name gamma

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"spice/internal/controlplane"
	"spice/internal/core"
	"spice/internal/dist"
	"spice/internal/obs"
)

var (
	serveMode    = flag.Bool("serve", false, "run as the campaign control plane instead of a worker: embedded coordinator + persistent multi-tenant queue + HTTP API")
	serveListen  = flag.String("listen", "127.0.0.1:9555", "with -serve: coordinator address spiced workers connect to")
	serveHTTP    = flag.String("http", "127.0.0.1:9556", "with -serve: HTTP address for the campaign API, /metrics, /healthz and /readyz")
	serveState   = flag.String("state", "", "with -serve: state directory for the campaign queue journal and the coordinator's job journal (required; survives SIGKILL)")
	serveWorkers = flag.Int("workers", 0, "with -serve: in-process workers to start alongside the coordinator")
	serveSystem  = flag.String("system", "", "with -serve: JSON core.SystemConfig for the simulated system (default: the standard sweep system)")
	maxActive    = flag.Int("max-active", 0, "with -serve: campaigns multiplexed on the coordinator at once (0 = unlimited)")
	agingRate    = flag.Float64("aging", 1, "with -serve: fair-share aging in priority points per queued hour (starvation-freedom knob; 0 disables aging)")
	backfill     = flag.Bool("backfill", false, "with -serve: let lower-ranked campaigns take leases past a quota-blocked one (default conservative: a blocked campaign also blocks everything ranked behind it)")
	quotasFlag   = flag.String("quotas", "", "with -serve: per-tenant quotas, 'tenant=maxQueued[:maxRunning],...' (0 = unlimited)")
	defaultQuota = flag.String("default-quota", "", "with -serve: quota for tenants absent from -quotas, 'maxQueued[:maxRunning]'")

	compactBytes   = flag.Int64("compact-bytes", 8<<20, "with -serve: compact a journal (fold it into a snapshot and truncate the log) when it grows past this size, bounding the on-disk footprint and replay time; applies to both the campaign queue and the job journal (0 disables)")
	storageRetries = flag.Int("storage-retries", 2, "with -serve: retries (short capped backoff) for a failed journal append before the service enters the degraded storage state — submissions get 503 + Retry-After, running campaigns keep draining, and a background probe restores service when the disk recovers")

	// Overload-protection knobs. -max-inflight is the one "how much at
	// once" dial for the daemon: it caps worker requests in processing at
	// the embedded coordinator AND concurrent API requests at the HTTP
	// layer (excess of either is shed with a retry hint, never queued).
	serveMaxInflight = flag.Int("max-inflight", 256, "with -serve: cap on requests processed at once — worker polls at the coordinator (shed with a jittered wait hint) and concurrent HTTP API requests (shed with 503 + Retry-After) (0 disables both)")
	serveSendQueue   = flag.Int("send-queue", 32, "with -serve: per-connection outgoing-response queue bound at the coordinator; a worker that lets it fill (a slow consumer) is evicted with its leases kept alive for re-attach (0 = synchronous writes)")
	tenantRPS        = flag.Float64("tenant-rps", 0, "with -serve: per-tenant token-bucket rate limit on mutating API calls (submit, cancel) in requests/second; over-rate calls get 429 + Retry-After (0 disables)")
)

// parseQuota parses "maxQueued[:maxRunning]".
func parseQuota(s string) (controlplane.Quota, error) {
	var q controlplane.Quota
	head, tail, _ := strings.Cut(s, ":")
	mq, err := strconv.Atoi(head)
	if err != nil {
		return q, fmt.Errorf("bad maxQueued %q", head)
	}
	q.MaxQueued = mq
	if tail != "" {
		mr, err := strconv.Atoi(tail)
		if err != nil {
			return q, fmt.Errorf("bad maxRunning %q", tail)
		}
		q.MaxRunning = mr
	}
	return q, nil
}

func parseQuotas(s string) (map[string]controlplane.Quota, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]controlplane.Quota)
	for _, part := range strings.Split(s, ",") {
		tenant, spec, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || tenant == "" {
			return nil, fmt.Errorf("bad quota entry %q (want tenant=maxQueued[:maxRunning])", part)
		}
		q, err := parseQuota(spec)
		if err != nil {
			return nil, fmt.Errorf("quota for %s: %w", tenant, err)
		}
		out[tenant] = q
	}
	return out, nil
}

// runServe is the -serve main loop. It owns process lifecycle: SIGTERM
// and SIGINT shut down cleanly; SIGKILL is the crash the journals are
// for.
func runServe(reg *obs.Registry, events *obs.EventLog) error {
	if *serveState == "" {
		return fmt.Errorf("-serve requires -state (the queue must survive restarts)")
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}

	// The simulated system shipped to workers. Intra-engine parallelism
	// is pinned so every process sums forces in the same chunk order —
	// the precondition for bit-identical distributed results.
	sys := core.DefaultSystem()
	if *serveSystem != "" {
		if err := json.Unmarshal([]byte(*serveSystem), &sys); err != nil {
			return fmt.Errorf("-system: %w", err)
		}
	}
	if sys.EngineWorkers == 0 {
		sys.EngineWorkers = 1
	}
	sysJSON, err := json.Marshal(sys)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *serveListen)
	if err != nil {
		return err
	}
	dcfg := dist.Defaults()
	dcfg.StateDir = *serveState
	dcfg.CompactBytes = *compactBytes
	dcfg.StorageRetries = *storageRetries
	dcfg.MaxInflight = *serveMaxInflight
	dcfg.SendQueue = *serveSendQueue
	dcfg.WireVersion = *wireVer
	dcfg.Compression = !*noCompress
	dcfg.DeltaCheckpoints = !*noDelta
	dcfg.Metrics = reg
	dcfg.Events = events
	co, err := dist.NewCoordinator(ln, sysJSON, dcfg)
	if err != nil {
		ln.Close()
		return err
	}
	defer co.Close()

	quotas, err := parseQuotas(*quotasFlag)
	if err != nil {
		return err
	}
	var defQ controlplane.Quota
	if *defaultQuota != "" {
		if defQ, err = parseQuota(*defaultQuota); err != nil {
			return fmt.Errorf("-default-quota: %w", err)
		}
	}
	cp, err := controlplane.New(controlplane.Config{
		Coordinator:    co,
		StateDir:       *serveState,
		MaxActive:      *maxActive,
		DefaultQuota:   defQ,
		Quotas:         quotas,
		Aging:          *agingRate,
		Backfill:       *backfill,
		CompactBytes:   *compactBytes,
		StorageRetries: *storageRetries,
		TenantRPS:      *tenantRPS,
		MaxConcurrent:  *serveMaxInflight,
		Metrics:        reg,
		Events:         events,
	})
	if err != nil {
		return err
	}
	defer cp.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// In-process workers inherit the wire knobs so the loopback fleet
	// exercises the same transport an external spiced would negotiate.
	wcfg := dist.Defaults()
	wcfg.WireVersion = dcfg.WireVersion
	wcfg.Compression = dcfg.Compression
	wcfg.DeltaCheckpoints = dcfg.DeltaCheckpoints
	for i := 0; i < *serveWorkers; i++ {
		w, err := dist.NewWorker(fmt.Sprintf("cp-local-%d", i), "", ln.Addr().String(), core.BuildFromJSON, wcfg)
		if err != nil {
			return err
		}
		go w.Run(ctx)
	}

	// One listener serves the campaign API and the obs endpoints;
	// /readyz flips once the queue journal is replayed and dispatch is
	// live.
	mux := obs.NewMux(reg, events, nil, cp.Ready)
	cp.Mount(mux)
	srv, err := obs.ServeHandler(*serveHTTP, mux)
	if err != nil {
		return err
	}
	defer srv.Close()
	cp.Start()

	fmt.Printf("control plane: http://%s/api/v1/campaigns (coordinator %s, %d in-process workers)\n",
		srv.Addr(), ln.Addr(), *serveWorkers)
	<-ctx.Done()
	fmt.Println("shutting down")
	return nil
}

// obsSetup builds the shared registry/event log from the -obs-events
// flag value (also used by worker mode).
func obsSetup(obsEvents string) (*obs.Registry, *obs.EventLog, func(), error) {
	reg := obs.NewRegistry()
	var evw io.Writer
	cleanup := func() {}
	switch obsEvents {
	case "":
	case "-":
		evw = os.Stderr
	default:
		f, err := os.OpenFile(obsEvents, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("-obs-events: %v", err)
		}
		cleanup = func() { f.Close() }
		evw = f
	}
	return reg, obs.NewEventLog(evw, 512), cleanup, nil
}
