// Command spiced is the SPICE worker daemon: it connects to a spice
// coordinator (spice -coordinator <addr>), pulls SMD jobs from its
// queue, streams checkpoints back with every heartbeat, and exits when
// the coordinator drains. Kill it mid-job and the coordinator reassigns
// the job to another worker, which resumes from the last streamed
// checkpoint with bit-identical results.
//
// Example — a coordinator plus two external workers:
//
//	spice -coordinator :9555 -workers 0 &
//	spiced -coordinator localhost:9555 -name alpha
//	spiced -coordinator localhost:9555 -name beta
//
// With -serve the daemon instead becomes the campaign control plane: a
// persistent multi-tenant queue with an HTTP API in front of an
// embedded coordinator (see serve.go).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spice/internal/core"
	"spice/internal/dist"
	"spice/internal/obs"
)

// Wire-protocol knobs, shared by worker mode and -serve: the flag caps
// what this process offers (worker) or grants (-serve's embedded
// coordinator); each connection settles on the lower of the two sides,
// so mixed-version fleets always interoperate.
var (
	wireVer    = flag.Int("wire", dist.Defaults().WireVersion, "maximum wire protocol version to negotiate: 0 = legacy JSON lines (netcat-debuggable), 1 = binary CRC-framed records with varint fields")
	noDelta    = flag.Bool("no-delta", false, "disable incremental (delta) checkpoints on v1 connections; every progress message then carries a full checkpoint image")
	noCompress = flag.Bool("no-compress", false, "disable block compression of bulk v1 payloads (checkpoints, resume images, work logs)")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spiced: ")

	var (
		coordinator = flag.String("coordinator", "", "coordinator address to pull jobs from (required)")
		name        = flag.String("name", "", "worker name in coordinator stats (default hostname)")
		site        = flag.String("site", "", "federation site identity: the grain at which the coordinator tracks health, trips circuit breakers, and places speculative hedges; every spiced on one machine/cluster should share it (default: worker name)")
		ioTimeout   = flag.Duration("io-timeout", 30*time.Second, "read/write deadline armed before every I/O on the coordinator connection, so a half-open peer times out instead of wedging (0 disables)")
		slots       = flag.Int("slots", 1, "jobs to run concurrently")
		beat        = flag.Duration("beat", 200*time.Millisecond, "lease heartbeat period")
		ckptEvery   = flag.Int("ckpt-every", 8, "recorded samples between streamed checkpoints")
		throttle    = flag.Duration("throttle", 0, "artificial sleep per checkpoint (testing/demo)")
		window      = flag.Duration("reconnect-window", 10*time.Second, "give up after failing to reach the coordinator for this long")
		backoffMax  = flag.Duration("reconnect-backoff", time.Second, "cap on the exponential re-dial backoff while the coordinator is unreachable")
		obsAddr     = flag.String("obs-addr", "", "serve /metrics (Prometheus text), /healthz and /debug/pprof/ on this address (e.g. 127.0.0.1:9091)")
		obsEvents   = flag.String("obs-events", "", "append the structured JSON-lines worker event log to this file (- for stderr)")
	)
	flag.Parse()

	if *serveMode {
		reg, events, cleanup, err := obsSetup(*obsEvents)
		if err != nil {
			log.Fatal(err)
		}
		defer cleanup()
		if err := runServe(reg, events); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *coordinator == "" {
		log.Fatal("-coordinator is required (or -serve for control-plane mode)")
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = fmt.Sprintf("spiced-%d", os.Getpid())
		}
		*name = host
	}

	// Observability plumbing, same shape as spice -obs-addr.
	var (
		reg    *obs.Registry
		events *obs.EventLog
	)
	if *obsAddr != "" || *obsEvents != "" {
		reg = obs.NewRegistry()
		var evw io.Writer
		switch *obsEvents {
		case "":
		case "-":
			evw = os.Stderr
		default:
			f, err := os.OpenFile(*obsEvents, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("-obs-events: %v", err)
			}
			defer f.Close()
			evw = f
		}
		events = obs.NewEventLog(evw, 512)
	}
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, reg, events, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("observability: http://%s/metrics (also /healthz, /debug/pprof/, /debug/events)\n", srv.Addr())
	}

	// All runtime knobs flow through one validated dist.Config ("0
	// disables" flag semantics, no per-field sentinel mapping).
	dcfg := dist.Defaults()
	dcfg.Slots = *slots
	dcfg.BeatInterval = *beat
	dcfg.CheckpointEvery = *ckptEvery
	dcfg.Throttle = *throttle
	dcfg.ReconnectWindow = *window
	dcfg.ReconnectBackoffMax = *backoffMax
	dcfg.IOTimeout = *ioTimeout
	dcfg.WireVersion = *wireVer
	dcfg.Compression = !*noCompress
	dcfg.DeltaCheckpoints = !*noDelta
	dcfg.Metrics = reg
	dcfg.Events = events
	w, err := dist.NewWorker(*name, *site, *coordinator, core.BuildFromJSON, dcfg)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	siteName := *site
	if siteName == "" {
		siteName = *name
	}
	fmt.Printf("spiced %s (site %s): %d slot(s), pulling from %s\n", *name, siteName, *slots, *coordinator)
	if err := w.Run(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("coordinator drained, exiting")
}
