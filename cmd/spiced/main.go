// Command spiced is the SPICE worker daemon: it connects to a spice
// coordinator (spice -coordinator <addr>), pulls SMD jobs from its
// queue, streams checkpoints back with every heartbeat, and exits when
// the coordinator drains. Kill it mid-job and the coordinator reassigns
// the job to another worker, which resumes from the last streamed
// checkpoint with bit-identical results.
//
// Example — a coordinator plus two external workers:
//
//	spice -coordinator :9555 -workers 0 &
//	spiced -coordinator localhost:9555 -name alpha
//	spiced -coordinator localhost:9555 -name beta
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spice/internal/core"
	"spice/internal/dist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spiced: ")

	var (
		coordinator = flag.String("coordinator", "", "coordinator address to pull jobs from (required)")
		name        = flag.String("name", "", "worker name in coordinator stats (default hostname)")
		site        = flag.String("site", "", "federation site identity: the grain at which the coordinator tracks health, trips circuit breakers, and places speculative hedges; every spiced on one machine/cluster should share it (default: worker name)")
		ioTimeout   = flag.Duration("io-timeout", 30*time.Second, "read/write deadline armed before every I/O on the coordinator connection, so a half-open peer times out instead of wedging (0 disables)")
		slots       = flag.Int("slots", 1, "jobs to run concurrently")
		beat        = flag.Duration("beat", 200*time.Millisecond, "lease heartbeat period")
		ckptEvery   = flag.Int("ckpt-every", 8, "recorded samples between streamed checkpoints")
		throttle    = flag.Duration("throttle", 0, "artificial sleep per checkpoint (testing/demo)")
		window      = flag.Duration("reconnect-window", 10*time.Second, "give up after failing to reach the coordinator for this long")
		backoffMax  = flag.Duration("reconnect-backoff", time.Second, "cap on the exponential re-dial backoff while the coordinator is unreachable")
	)
	flag.Parse()

	if *coordinator == "" {
		log.Fatal("-coordinator is required")
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = fmt.Sprintf("spiced-%d", os.Getpid())
		}
		*name = host
	}

	w := &dist.Worker{
		Name:                *name,
		Site:                *site,
		Addr:                *coordinator,
		Slots:               *slots,
		Build:               core.BuildFromJSON,
		BeatInterval:        *beat,
		CheckpointEvery:     *ckptEvery,
		Throttle:            *throttle,
		Reconnect:           true,
		ReconnectWindow:     *window,
		ReconnectBackoffMax: *backoffMax,
		IOTimeout:           *ioTimeout,
	}
	if *ioTimeout <= 0 {
		w.IOTimeout = -1 // flag 0 means off; the zero value means default
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	siteName := *site
	if siteName == "" {
		siteName = *name
	}
	fmt.Printf("spiced %s (site %s): %d slot(s), pulling from %s\n", *name, siteName, *slots, *coordinator)
	if err := w.Run(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("coordinator drained, exiting")
}
