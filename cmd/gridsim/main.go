// Command gridsim runs the federated-grid experiments at the paper's
// production scale: the 72-simulation campaign on the US-UK federation of
// Fig. 5 versus single-site baselines, under background load, reservation
// workflows and failure injection.
//
// Usage:
//
//	gridsim                       # campaign scenarios
//	gridsim -reservations 20      # reservation workflow comparison
//	gridsim -breach               # security-breach resilience experiment
package main

import (
	"flag"
	"fmt"
	"log"

	"spice/internal/campaign"
	"spice/internal/federation"
	"spice/internal/xrand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gridsim: ")
	var (
		load         = flag.Float64("load", 0.4, "background load fraction on every machine")
		reservations = flag.Int("reservations", 0, "compare reservation workflows over N requests")
		breach       = flag.Bool("breach", false, "inject the §V.C.4 security breach")
		seed         = flag.Uint64("seed", 2005, "simulation seed")
	)
	flag.Parse()

	if *reservations > 0 {
		compareReservations(*reservations, *seed)
		return
	}
	if *breach {
		breachExperiment(*load, *seed)
		return
	}
	campaignScenarios(*load, *seed)
}

func campaignScenarios(load float64, seed uint64) {
	spec := campaign.PaperSpec()
	cm := campaign.PaperCostModel()
	fmt.Printf("SMD-JE production campaign: %d jobs, %d procs each\n\n", len(spec.Jobs(cm)), spec.ProcsPerJob)

	feds := map[string]*federation.Federation{
		"federated US-UK grid": federation.SPICEFederation(),
		"single site (512p)":   campaign.SingleSite("local-512", 512),
		"single site (1024p)":  campaign.SingleSite("local-1024", 1024),
	}
	for _, f := range feds {
		if err := campaign.BackgroundLoad(f, load, 24*14, seed); err != nil {
			log.Fatal(err)
		}
	}
	results, labels, err := campaign.CompareScenarios(feds, spec, cm, federation.JobConstraint{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %10s %10s %12s %10s\n", "scenario", "makespan", "days", "CPU-hours", "machines")
	for _, l := range labels {
		r := results[l]
		fmt.Printf("%-22s %9.1fh %10.2f %12.0f %10d\n", l, r.MakespanHours, r.Days(), r.TotalCPUHours, len(r.PerSite))
	}
	fed := results["federated US-UK grid"]
	fmt.Printf("\nfederation job distribution:\n")
	for m, n := range fed.PerSite {
		fmt.Printf("  %-12s %d jobs\n", m, n)
	}
	fmt.Printf("\npaper claim: 72 sims, ~75,000 CPU-hours, < 1 week on the federation → %.2f days here\n", fed.Days())
}

func compareReservations(n int, seed uint64) {
	rng := xrand.New(seed)
	fmt.Printf("advance-reservation workflows over %d cross-site requests:\n\n", n)
	fmt.Printf("%-10s %8s %8s %12s %14s\n", "workflow", "errors", "emails", "delay (h)", "interventions")
	for _, w := range []federation.ReservationWorkflow{federation.Manual, federation.WebInterface, federation.Automated} {
		o := federation.CampaignReservationCost(w, n, rng)
		fmt.Printf("%-10s %8d %8d %12.1f %14d\n", w, o.Errors, o.Emails, o.DelayHours, o.Interventions)
	}
	fmt.Println("\npaper anecdote: ~12 emails correcting 3 errors for ONE manual request (§V.C.3)")
}

func breachExperiment(load float64, seed uint64) {
	spec := campaign.PaperSpec()
	cm := campaign.PaperCostModel()

	run := func(label string, outages []federation.Outage, ukOnly bool) {
		fed := federation.SPICEFederation()
		if ukOnly {
			fed.Grids = fed.Grids[1:] // NGS only
		}
		_ = campaign.BackgroundLoad(fed, load, 24*14, seed)
		fed.Apply(outages)
		r, err := campaign.Simulate(fed, spec, cm, true, federation.JobConstraint{NeedsCrossSite: true})
		if err != nil {
			fmt.Printf("%-34s campaign IMPOSSIBLE: %v\n", label, err)
			return
		}
		fmt.Printf("%-34s %8.2f days\n", label, r.Days())
	}
	fmt.Println("failure-injection: security breach quarantines Manchester for 3 weeks (§V.C.4)")
	fmt.Println()
	run("healthy federation", nil, false)
	run("federation + breach", []federation.Outage{federation.SecurityBreach("Manchester", 24)}, false)
	run("UK NGS alone + breach", []federation.Outage{federation.SecurityBreach("Manchester", 24)}, true)
	fmt.Println("\nredundancy across the federation absorbs the outage; a single grid does not")
}
