// Command pmf computes free energy profiles from SMD work logs: it reads
// one or more spice-worklog files, groups them by (κ, v) protocol, and
// prints the Jarzynski PMF with bootstrap errors for each group — the
// standalone analysis step of the SPICE pipeline, runnable wherever the
// logs land after a grid campaign.
//
// Usage:
//
//	pmf [-temp 300] [-estimator cumulant2] [-resamples 200] log1 log2 ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"spice/internal/jarzynski"
	"spice/internal/trace"
	"spice/internal/xrand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pmf: ")
	var (
		temp      = flag.Float64("temp", 300, "temperature, K")
		estimator = flag.String("estimator", "cumulant2", "exponential|cumulant1|cumulant2")
		resamples = flag.Int("resamples", 200, "bootstrap resamples")
		seed      = flag.Uint64("seed", 1, "bootstrap seed")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("no work logs given")
	}
	est, err := parseEstimator(*estimator)
	if err != nil {
		log.Fatal(err)
	}

	type protoKey struct{ kappa, velocity float64 }
	groups := make(map[protoKey][]*trace.WorkLog)
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		wl, err := trace.ReadWorkLog(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		k := protoKey{wl.Kappa, wl.Velocity}
		groups[k] = append(groups[k], wl)
	}

	keys := make([]protoKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kappa != keys[j].kappa {
			return keys[i].kappa < keys[j].kappa
		}
		return keys[i].velocity < keys[j].velocity
	})

	rng := xrand.New(*seed)
	for _, k := range keys {
		logs := groups[k]
		ens, err := jarzynski.NewEnsemble(*temp, logs)
		if err != nil {
			log.Fatalf("protocol κ=%g v=%g: %v", k.kappa, k.velocity, err)
		}
		pmf, err := ens.PMF(est)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# κ=%g kcal/mol/Å² v=%g Å/ps, %d trajectories, estimator %v\n",
			k.kappa, k.velocity, ens.N(), est)
		if ens.N() >= 2 {
			sig, err := ens.StatError(est, *resamples, rng)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10s %14s %12s\n", "z(Å)", "Φ(kcal/mol)", "σ_stat")
			for i := range ens.Grid {
				fmt.Printf("%10.3f %14.5f %12.5f\n", ens.Grid[i], pmf[i], sig[i])
			}
		} else {
			fmt.Printf("%10s %14s\n", "z(Å)", "Φ(kcal/mol)")
			for i := range ens.Grid {
				fmt.Printf("%10.3f %14.5f\n", ens.Grid[i], pmf[i])
			}
		}
		fmt.Println()
	}
}

func parseEstimator(s string) (jarzynski.Estimator, error) {
	switch s {
	case "exponential":
		return jarzynski.Exponential, nil
	case "cumulant1":
		return jarzynski.Cumulant1, nil
	case "cumulant2":
		return jarzynski.Cumulant2, nil
	default:
		return 0, fmt.Errorf("unknown estimator %q", s)
	}
}
