package main

// spice -server: the control-plane client mode. Instead of running the
// sweep in-process, the spec built from the usual flags is submitted to
// a spiced -serve control plane, and campaign lifecycle is driven over
// its HTTP API:
//
//	spice -server :9556 -submit -tenant alice -priority 2 -wait -out logs/
//	spice -server :9556 -status
//	spice -server :9556 -status -id c-1a2b3c4d
//	spice -server :9556 -result c-1a2b3c4d -out logs/
//	spice -server :9556 -cancel c-1a2b3c4d
//
// Work logs fetched with -out are written in the same format and
// layout as a local `spice -out` run, so bit-identity between a
// control-plane campaign and a local run is a byte comparison away.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"spice/internal/campaign"
	"spice/internal/controlplane"
	"spice/internal/dist"
	"spice/internal/dist/statsfmt"
	"spice/internal/trace"
)

var (
	serverAddr = flag.String("server", "", "control plane address (spiced -serve -http): enables client mode with -submit/-status/-cancel/-result")
	submitFlag = flag.Bool("submit", false, "with -server: submit the campaign spec built from -kappas/-velocities/-replicas/-distance/-seed")
	waitFlag   = flag.Bool("wait", false, "with -submit: block until the campaign finishes and fetch its result")
	statusFlag = flag.Bool("status", false, "with -server: list campaigns (all tenants, or -tenant's)")
	statusID   = flag.String("id", "", "with -status: inspect one campaign instead of listing")
	cancelID   = flag.String("cancel", "", "with -server: cancel this campaign")
	resultID   = flag.String("result", "", "with -server: fetch this campaign's work logs (write them with -out)")
	statsFlag  = flag.Bool("stats", false, "with -server: print per-tenant queue depths and the coordinator's unified stats snapshot")
	tenantFlag = flag.String("tenant", "", "with -submit: tenant the campaign is accounted to")
	prioFlag   = flag.Int("priority", 0, "with -submit: base scheduling priority (higher first)")
	nameFlag   = flag.String("campaign-name", "", "with -submit: name distinguishing otherwise-identical submissions")
	retryMax   = flag.Int("retry-max", 4, "with -server: retries for API calls refused with a Retry-After header (429 rate limit, 503 shed/degraded) before the error is surfaced; the wait is the larger of the server's hint and a decorrelated backoff (0 disables)")
)

// runClient dispatches one client-mode action.
func runClient(addr string, spec campaign.Spec, outDir string) error {
	cl := &controlplane.Client{Base: addr, RetryMax: *retryMax}
	ctx := context.Background()
	switch {
	case *cancelID != "":
		if err := cl.Cancel(ctx, *cancelID); err != nil {
			return err
		}
		fmt.Printf("canceled %s\n", *cancelID)
		return nil

	case *resultID != "":
		logs, err := cl.Result(ctx, *resultID)
		if err != nil {
			return err
		}
		return emitLogs(logs, outDir)

	case *statsFlag:
		st, err := cl.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %7s %8s %6s %7s %9s %9s\n",
			"TENANT", "queued", "running", "done", "failed", "canceled", "usage")
		for _, q := range st.Queue {
			fmt.Printf("%-12s %7d %8d %6d %7d %9d %9.1f\n",
				q.Tenant, q.Queued, q.Running, q.Done, q.Failed, q.Canceled, q.Usage)
		}
		// The execution half renders through the same statsfmt tables a
		// local `spice -coordinator` run prints at exit.
		fmt.Println()
		statsfmt.Render(os.Stdout, st.Dist, "dist: ")
		return nil

	case *statusFlag:
		if *statusID != "" {
			c, err := cl.Get(ctx, *statusID)
			if err != nil {
				return err
			}
			printCampaigns([]controlplane.Campaign{c})
			return nil
		}
		list, err := cl.List(ctx, *tenantFlag)
		if err != nil {
			return err
		}
		printCampaigns(list)
		return nil

	case *submitFlag:
		tag := dist.CampaignTag{Tenant: *tenantFlag, Priority: *prioFlag, Name: *nameFlag}
		id, err := cl.Submit(ctx, spec, tag)
		if err != nil {
			return err
		}
		fmt.Printf("submitted %s (%d jobs)\n", id, len(spec.Tasks()))
		if !*waitFlag {
			return nil
		}
		c, err := cl.WaitDone(ctx, id, 250*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Printf("campaign %s: %s\n", id, c.State)
		if c.State != controlplane.StateDone {
			return fmt.Errorf("campaign ended %s: %s", c.State, c.Error)
		}
		logs, err := cl.Result(ctx, id)
		if err != nil {
			return err
		}
		return emitLogs(logs, outDir)

	default:
		return fmt.Errorf("-server needs one of -submit, -status, -cancel <id>, -result <id>")
	}
}

// emitLogs prints the per-combo sample summary and, with -out, writes
// the work logs in the local-run layout.
func emitLogs(logs map[campaign.Combo][]*trace.WorkLog, outDir string) error {
	for _, cl := range controlplane.FlattenResult(logs) {
		samples := 0
		for _, wl := range cl.Logs {
			samples += len(wl.Samples)
		}
		fmt.Printf("  κ=%-8g v=%-8g %d replicas, %d samples\n", cl.Kappa, cl.Velocity, len(cl.Logs), samples)
	}
	if outDir == "" {
		return nil
	}
	n, err := writeLogMap(outDir, logs)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d work logs to %s\n", n, outDir)
	return nil
}

func printCampaigns(list []controlplane.Campaign) {
	fmt.Printf("%-12s %-10s %-9s %4s %9s  %s\n", "ID", "TENANT", "STATE", "PRIO", "JOBS", "SUBMITTED")
	for _, c := range list {
		jobs := ""
		if c.JobsTotal > 0 {
			jobs = fmt.Sprintf("%d/%d", c.JobsDone, c.JobsTotal)
		}
		fmt.Printf("%-12s %-10s %-9s %4d %9s  %s\n",
			c.ID, c.Tenant, c.State, c.Priority, jobs, c.Submitted.Format(time.RFC3339))
	}
}
