// Command spice runs the SPICE SMD-JE pipeline: a (κ, v) priming sweep
// with error analysis (the paper's Fig. 4), parameter selection, and an
// optional production PMF at the chosen parameters. With -imd it instead
// serves an interactive session a visualizer (cmd/imdview) can join.
// With -coordinator it distributes the pulls over TCP to spiced worker
// daemons (plus -workers in-process ones), with bit-identical results.
//
// Examples:
//
//	spice -beads 8 -replicas 2 -distance 10
//	spice -production
//	spice -imd :9777 -frames 200
//	spice -coordinator :9555 -workers 2   # spiced daemons may join too
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"spice/internal/campaign"
	"spice/internal/core"
	"spice/internal/dist"
	"spice/internal/dist/statsfmt"
	"spice/internal/imd"
	"spice/internal/jarzynski"
	"spice/internal/md"
	"spice/internal/obs"
	"spice/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spice: ")

	var (
		beads      = flag.Int("beads", 8, "ssDNA length in nucleotides")
		kappas     = flag.String("kappas", "10,100,1000", "spring constants, pN/Å (comma separated)")
		velocities = flag.String("velocities", "12.5,25,50,100", "pulling velocities, Å/ns")
		replicas   = flag.Int("replicas", 2, "replicas at the slowest velocity")
		distance   = flag.Float64("distance", 10, "sub-trajectory length, Å")
		estimator  = flag.String("estimator", "cumulant2", "PMF estimator: exponential|cumulant1|cumulant2")
		workers    = flag.Int("workers", 0, "parallel pull workers (0 = NumCPU)")
		batchSize  = flag.Int("batch", 0, "run local pulls as ensemble batches of this many replicas sharing one static-substrate neighbor grid and step-worker pool (0 = one goroutine per pull)")
		seed       = flag.Uint64("seed", 2005, "campaign seed")
		production = flag.Bool("production", false, "run a production PMF at the sweep optimum")
		outDir     = flag.String("out", "", "write per-pull work logs into this directory (for cmd/pmf)")
		imdAddr    = flag.String("imd", "", "serve an interactive session on this address instead")
		frames     = flag.Int("frames", 100, "IMD frames to serve")
		coordAddr  = flag.String("coordinator", "", "distribute pulls: listen on this address for spiced workers (-workers then spawns in-process ones)")
		stateDir   = flag.String("state", "", "with -coordinator: journal job state under this directory so a killed coordinator can be restarted with the same -state and resume the campaign")

		// Durable-storage knobs (all scoped to -coordinator -state).
		compactBytes   = flag.Int64("compact-bytes", 8<<20, "compact the job journal (fold it into a snapshot and truncate the log) when it grows past this size, bounding disk footprint and replay time (0 disables)")
		storageRetries = flag.Int("storage-retries", 2, "retries (short capped backoff) for a failed journal append before the coordinator enters the degraded storage state instead of crashing")

		// Federation-resilience knobs (all scoped to -coordinator).
		breakerThreshold = flag.Int("breaker-threshold", 3, "consecutive failure strikes (fails, lease expiries, disconnects) before a site's circuit breaker opens and it stops receiving work (0 disables)")
		breakerCooldown  = flag.Duration("breaker-cooldown", 0, "quarantine before an open site is re-probed with a single job (0 = 2x the lease TTL)")
		hedgeFraction    = flag.Float64("hedge-fraction", 0.3, "hedge a job speculatively onto a second site when its checkpoint rate falls below this fraction of the fleet median; first finished attempt wins (0 disables)")
		hedgeStall       = flag.Duration("hedge-stall", 0, "also hedge a job whose step counter has not advanced for this long while still heartbeating (0 disables)")
		ioTimeout        = flag.Duration("io-timeout", 30*time.Second, "read/write deadline armed before every I/O on every worker connection, so a half-open peer times out instead of wedging a reader (0 disables)")

		// Overload-protection knobs (all scoped to -coordinator).
		maxInflight = flag.Int("max-inflight", 256, "cap on worker requests processed at once; excess work polls are shed with an immediate jittered wait hint and heartbeats coalesce past half the cap (0 disables)")
		sendQueue   = flag.Int("send-queue", 32, "per-connection outgoing-response queue bound; a worker that lets it fill (a slow consumer) is evicted with its leases kept alive for re-attach (0 = synchronous writes)")

		// Wire-protocol knobs (scoped to -coordinator). Each connection
		// settles on min(coordinator, worker), so old spiced daemons keep
		// working against a v1 coordinator and vice versa.
		wireVer    = flag.Int("wire", dist.Defaults().WireVersion, "maximum wire protocol version to grant workers: 0 = legacy JSON lines (netcat-debuggable), 1 = binary CRC-framed records with varint fields")
		noDelta    = flag.Bool("no-delta", false, "disable incremental (delta) checkpoints on v1 connections; every progress message then carries a full checkpoint image")
		noCompress = flag.Bool("no-compress", false, "disable block compression of bulk v1 payloads (checkpoints, resume images, work logs)")

		// Observability.
		obsAddr   = flag.String("obs-addr", "", "serve /metrics (Prometheus text), /healthz and /debug/pprof/ on this address (e.g. 127.0.0.1:9090)")
		obsEvents = flag.String("obs-events", "", "append the structured JSON-lines scheduling event log to this file (- for stderr)")
	)
	flag.Parse()

	if *imdAddr != "" {
		if err := serveIMD(*imdAddr, *beads, *frames, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	est, err := parseEstimator(*estimator)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.PaperSweep()
	cfg.System.Beads = *beads
	cfg.Kappas, err = parseFloats(*kappas)
	if err != nil {
		log.Fatalf("-kappas: %v", err)
	}
	cfg.Velocities, err = parseFloats(*velocities)
	if err != nil {
		log.Fatalf("-velocities: %v", err)
	}
	cfg.Replicas = *replicas
	cfg.Distance = *distance
	cfg.Estimator = est
	cfg.Workers = *workers
	cfg.Seed = *seed

	// Client mode: ship the spec to a control plane instead of running
	// it here. The system is the server's; only the campaign spec and
	// tenant identity travel.
	if *serverAddr != "" {
		spec := campaign.Spec{
			Kappas:     cfg.Kappas,
			Velocities: cfg.Velocities,
			Replicas:   cfg.Replicas,
			Distance:   cfg.Distance,
			Seed:       cfg.Seed,
		}
		if err := runClient(*serverAddr, spec, *outDir); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Observability plumbing: one registry + event log feed the debug
	// server, the coordinator (or the local runner) and the event file.
	var (
		reg    *obs.Registry
		events *obs.EventLog
	)
	if *obsAddr != "" || *obsEvents != "" {
		reg = obs.NewRegistry()
		var evw io.Writer
		switch *obsEvents {
		case "":
		case "-":
			evw = os.Stderr
		default:
			f, err := os.OpenFile(*obsEvents, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("-obs-events: %v", err)
			}
			defer f.Close()
			evw = f
		}
		events = obs.NewEventLog(evw, 512)
	}
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, reg, events, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("observability: http://%s/metrics (also /healthz, /debug/pprof/, /debug/events)\n", srv.Addr())
	}

	// The dist runtime knobs, built from flags in one place. The flag
	// semantics ("0 disables") are the Config semantics, so no sentinel
	// mapping is needed here.
	dcfg := dist.Defaults()
	dcfg.StateDir = *stateDir
	dcfg.CompactBytes = *compactBytes
	dcfg.StorageRetries = *storageRetries
	dcfg.BreakerThreshold = *breakerThreshold
	dcfg.BreakerCooldown = *breakerCooldown
	dcfg.HedgeFraction = *hedgeFraction
	dcfg.HedgeStall = *hedgeStall
	dcfg.IOTimeout = *ioTimeout
	dcfg.MaxInflight = *maxInflight
	dcfg.SendQueue = *sendQueue
	dcfg.WireVersion = *wireVer
	dcfg.Compression = !*noCompress
	dcfg.DeltaCheckpoints = !*noDelta
	dcfg.Metrics = reg
	dcfg.Events = events

	var co *dist.Coordinator
	if *coordAddr != "" {
		var cancel context.CancelFunc
		co, cancel, err = startCoordinator(*coordAddr, &cfg.System, *workers, dcfg)
		if err != nil {
			log.Fatal(err)
		}
		defer cancel()
		defer co.Close()
		cfg.Runner = co
	} else if *batchSize > 1 {
		// Ensemble path: cfg.Runner stays nil, so core builds a
		// campaign.LocalRunner with Batch set — replicas are adopted into
		// md.Batch groups that share the static-substrate grid. Output is
		// bit-identical to the per-pull path.
		cfg.Batch = *batchSize
	} else {
		// Local runs go through dist.LocalRunner — the same execution
		// path and the same stats/metrics surface as a federated run,
		// just without the network.
		lr := &dist.LocalRunner{
			Build: func(_ campaign.Combo, seed uint64) (*md.Engine, []int, error) {
				eng, sel, err := cfg.System.Build(seed)
				if err == nil {
					dist.InstrumentEngine(reg, eng)
				}
				return eng, sel, err
			},
			Workers: cfg.Workers,
			Events:  events,
		}
		if reg != nil {
			dist.RegisterMetrics(reg, lr)
		}
		cfg.Runner = lr
	}

	fmt.Printf("SPICE priming sweep: %d κ × %d v, %g Å sub-trajectory, estimator %v\n\n",
		len(cfg.Kappas), len(cfg.Velocities), *distance, est)
	res, err := core.RunSweep(cfg)
	if err != nil {
		log.Fatal(err)
	}
	printSweep(res)
	if co != nil {
		printDistStats(co)
	}

	if *outDir != "" {
		n, err := writeLogs(*outDir, res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d work logs to %s (analyze with: go run ./cmd/pmf %s/*.work)\n", n, *outDir, *outDir)
	}

	if *production {
		fmt.Printf("\nProduction PMF at κ=%g pN/Å, v=%g Å/ns\n", res.Best.KappaPaper, res.Best.VPaper)
		prodCfg := core.ProductionConfig{
			System:    cfg.System,
			KappaPN:   res.Best.KappaPaper,
			VAns:      res.Best.VPaper,
			Replicas:  4 * *replicas,
			Distance:  *distance,
			Workers:   *workers,
			Batch:     cfg.Batch,
			Seed:      *seed + 1,
			Estimator: jarzynski.Exponential,
		}
		if co != nil {
			prodCfg.Runner = co
		}
		prod, err := core.RunProduction(prodCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10s %12s %12s\n", "z (Å)", "Φ (kcal/mol)", "σ_stat")
		for i := range prod.Grid {
			fmt.Printf("%10.2f %12.4f %12.4f\n", prod.Grid[i], prod.PMF[i], prod.SigmaStat[i])
		}
	}
}

// startCoordinator opens the dist listener and spawns the in-process
// workers. The engine's intra-simulation parallelism is pinned so every
// process — local or remote — sums forces in the same chunk order;
// that, plus bit-exact checkpoints, is what makes distributed results
// byte-identical to local ones.
func startCoordinator(addr string, sys *core.SystemConfig, workers int, dcfg dist.Config) (*dist.Coordinator, context.CancelFunc, error) {
	if sys.EngineWorkers == 0 {
		sys.EngineWorkers = 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	sysJSON, err := json.Marshal(sys)
	if err != nil {
		ln.Close()
		return nil, nil, err
	}
	co, err := dist.NewCoordinator(ln, sysJSON, dcfg)
	if err != nil {
		ln.Close()
		return nil, nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	// In-process workers inherit the coordinator's wire knobs so the
	// loopback fleet exercises the same transport an external spiced
	// would negotiate.
	wcfg := dist.Defaults()
	wcfg.WireVersion = dcfg.WireVersion
	wcfg.Compression = dcfg.Compression
	wcfg.DeltaCheckpoints = dcfg.DeltaCheckpoints
	for i := 0; i < workers; i++ {
		w, err := dist.NewWorker(fmt.Sprintf("local-%d", i), "", ln.Addr().String(), core.BuildFromJSON, wcfg)
		if err != nil {
			cancel()
			ln.Close()
			return nil, nil, err
		}
		go w.Run(ctx)
	}
	fmt.Printf("coordinating pulls on %s (%d in-process workers; join with: spiced -coordinator %s)\n",
		ln.Addr(), workers, ln.Addr())
	return co, cancel, nil
}

// printDistStats renders the unified stats snapshot — the same
// numbers /metrics scrapes, via the shared statsfmt renderer.
func printDistStats(src dist.StatsSource) {
	fmt.Println()
	statsfmt.Render(os.Stdout, src.StatsSnapshot(), "dist: ")
}

func printSweep(res *core.SweepResult) {
	fmt.Printf("%10s %10s %8s %10s %10s %10s\n", "κ (pN/Å)", "v (Å/ns)", "samples", "σ_stat", "σ_sys", "combined")
	for _, p := range res.Points {
		fmt.Printf("%10g %10g %8d %10.4f %10.4f %10.4f\n",
			p.KappaPaper, p.VPaper, p.Samples, p.SigmaStat, p.SigmaSys, p.CombinedError())
	}
	fmt.Printf("\noptimal parameters: κ=%g pN/Å, v=%g Å/ns\n", res.Best.KappaPaper, res.Best.VPaper)
	fmt.Printf("\nPMF at the optimum (displacement of COM, Å → Φ, kcal/mol):\n")
	for i := range res.Grid {
		fmt.Printf("  %6.2f  %8.4f\n", res.Grid[i], res.Best.PMF[i])
	}
}

func serveIMD(addr string, beads, frames int, seed uint64) error {
	spec := md.DefaultTranslocation(beads)
	spec.Seed = seed
	ts, err := md.BuildTranslocation(spec)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("serving interactive session on %s (%d atoms, %d frames)\n", ln.Addr(), ts.Engine.Topology().N(), frames)
	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	stats, err := imd.Serve(ts.Engine, conn, imd.SessionConfig{Stride: 20, Frames: frames, Sync: true})
	if err != nil {
		return err
	}
	fmt.Printf("session done: %d frames, %d forces, stall fraction %.1f%%, slowdown %.2fx\n",
		stats.Frames, stats.ForcesReceived, 100*stats.StallFraction(), stats.Slowdown())
	return nil
}

func writeLogs(dir string, res *core.SweepResult) (int, error) {
	return writeLogMap(dir, res.Logs)
}

// writeLogMap writes one .work file per replica, named by combo and
// replica index — the same layout whether the logs came from a local
// run or were fetched from a control plane, so outputs are directly
// byte-comparable.
func writeLogMap(dir string, logs map[campaign.Combo][]*trace.WorkLog) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	n := 0
	for combo, wls := range logs {
		for r, wl := range wls {
			path := fmt.Sprintf("%s/%s-r%d.work", dir, combo, r)
			f, err := os.Create(path)
			if err != nil {
				return n, err
			}
			if err := trace.WriteWorkLog(f, wl); err != nil {
				f.Close()
				return n, err
			}
			if err := f.Close(); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseEstimator(s string) (jarzynski.Estimator, error) {
	switch s {
	case "exponential":
		return jarzynski.Exponential, nil
	case "cumulant1":
		return jarzynski.Cumulant1, nil
	case "cumulant2":
		return jarzynski.Cumulant2, nil
	default:
		return 0, fmt.Errorf("unknown estimator %q", s)
	}
}
