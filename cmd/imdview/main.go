// Command imdview is a terminal visualizer for a running SPICE
// simulation: it connects to an IMD endpoint (see `spice -imd`), renders a
// one-line summary per frame (step, time, leading-bead height, strand
// extent), and can optionally steer an atom toward a target with the
// synthetic haptic controller.
//
// Usage:
//
//	imdview -addr localhost:9777
//	imdview -addr localhost:9777 -steer 0 -target -20
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"net"

	"spice/internal/imd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("imdview: ")
	var (
		addr   = flag.String("addr", "localhost:9777", "IMD endpoint")
		steer  = flag.Int("steer", -1, "atom index to steer (-1 = passive)")
		target = flag.Float64("target", 0, "target z for the steered atom, Å")
		every  = flag.Int("every", 10, "print every Nth frame")
	)
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	client, err := imd.Connect(conn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected: %d atoms\n", client.NAtoms)

	var haptic *imd.Haptic
	if *steer >= 0 {
		haptic = imd.NewHaptic(*steer, *target, 1)
		fmt.Printf("steering atom %d toward z=%g Å\n", *steer, *target)
	}
	client.OnFrame = func(step int64, t float64, coords []float32) *imd.Message {
		if client.FramesSeen%*every == 1 || *every <= 1 {
			printFrame(step, t, coords)
		}
		if haptic != nil {
			return haptic.OnFrame(step, t, coords)
		}
		return nil
	}
	if err := client.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("session ended")
	if haptic != nil {
		fmt.Printf("peak haptic force: %.1f pN\n", haptic.PeakForcePN())
	}
}

func printFrame(step int64, t float64, coords []float32) {
	n := len(coords) / 3
	if n == 0 {
		return
	}
	leadZ := float64(coords[2])
	minZ, maxZ := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		z := float64(coords[3*i+2])
		minZ = math.Min(minZ, z)
		maxZ = math.Max(maxZ, z)
	}
	fmt.Printf("step %8d  t %8.2f ps  lead z %7.2f Å  span [%7.2f, %7.2f] Å\n",
		step, t, leadZ, minZ, maxZ)
}
